package eval

import (
	"math"
	"testing"
	"testing/quick"

	"hics/internal/rng"
)

func TestPRPerfectRanking(t *testing.T) {
	scores := []float64{4, 3, 2, 1}
	labels := []bool{true, true, false, false}
	curve, err := PR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Precision stays 1 until all positives are found.
	for _, p := range curve {
		if p.Recall <= 1.0 && p.Recall > 0 && p.Precision < 0.5 {
			t.Errorf("unexpectedly low precision %v at recall %v", p.Precision, p.Recall)
		}
	}
	ap, err := AveragePrecision(scores, labels)
	if err != nil || ap != 1 {
		t.Errorf("AP of perfect ranking = %v, err %v", ap, err)
	}
}

func TestPRWorstRanking(t *testing.T) {
	scores := []float64{1, 2, 3, 4}
	labels := []bool{true, true, false, false}
	ap, err := AveragePrecision(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Positives at ranks 3 and 4: AP = 0.5·(1/3) + 0.5·(2/4) ≈ 0.4167.
	want := 0.5*(1.0/3.0) + 0.5*0.5
	if math.Abs(ap-want) > 1e-12 {
		t.Errorf("AP = %v, want %v", ap, want)
	}
}

func TestPRKnownCurve(t *testing.T) {
	// Ranking: pos, neg, pos, neg.
	scores := []float64{4, 3, 2, 1}
	labels := []bool{true, false, true, false}
	curve, err := PR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := []PRPoint{
		{Recall: 0.5, Precision: 1},
		{Recall: 0.5, Precision: 0.5},
		{Recall: 1, Precision: 2.0 / 3.0},
		{Recall: 1, Precision: 0.5},
	}
	if len(curve) != len(want) {
		t.Fatalf("curve length %d, want %d", len(curve), len(want))
	}
	for i := range want {
		if math.Abs(curve[i].Recall-want[i].Recall) > 1e-12 ||
			math.Abs(curve[i].Precision-want[i].Precision) > 1e-12 {
			t.Errorf("point %d = %+v, want %+v", i, curve[i], want[i])
		}
	}
}

func TestPRTiesAdvanceTogether(t *testing.T) {
	scores := []float64{1, 1, 1, 1}
	labels := []bool{true, false, true, false}
	curve, err := PR(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 1 {
		t.Fatalf("tied scores should give one step, got %d", len(curve))
	}
	if curve[0].Recall != 1 || curve[0].Precision != 0.5 {
		t.Errorf("tied step = %+v", curve[0])
	}
}

func TestPRErrors(t *testing.T) {
	if _, err := PR([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := PR([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Error("single-class should fail")
	}
	if _, err := AveragePrecision([]float64{1, 2}, []bool{false, false}); err == nil {
		t.Error("AP single-class should fail")
	}
}

// Property: AP is within [0,1] and recall ends at 1.
func TestQuickPRInvariants(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		m := int(n%60) + 4
		scores := make([]float64, m)
		labels := make([]bool, m)
		for i := range scores {
			scores[i] = math.Floor(r.Float64()*8) / 8
			labels[i] = r.Float64() < 0.25
		}
		labels[0], labels[1] = true, false
		curve, err := PR(scores, labels)
		if err != nil {
			return false
		}
		last := curve[len(curve)-1]
		if last.Recall != 1 {
			return false
		}
		for _, p := range curve {
			if p.Precision < 0 || p.Precision > 1 || p.Recall < 0 || p.Recall > 1 {
				return false
			}
		}
		ap, err := AveragePrecision(scores, labels)
		return err == nil && ap >= 0 && ap <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
