// Package eval implements the ranking-quality measures used in the paper's
// evaluation: the ROC curve and its area under curve (AUC), computed with
// the tie-corrected Mann–Whitney statistic, plus precision@n.
//
// Higher outlier scores must mean "more outlying" for all functions here.
package eval

import (
	"errors"
	"math"
	"sort"
)

// AUC returns the area under the ROC curve for the given scores against the
// binary ground truth. Ties in the scores are handled with the midrank
// convention, i.e. AUC equals the tie-corrected Mann–Whitney U statistic
// normalized by nPos·nNeg. It returns an error when either class is empty.
func AUC(scores []float64, outlier []bool) (float64, error) {
	if len(scores) != len(outlier) {
		return 0, errors.New("eval: scores and labels differ in length")
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Midranks with tie groups.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1 // ranks are 1-based
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}

	var nPos, nNeg int
	var rankSum float64
	for i, o := range outlier {
		if o {
			nPos++
			rankSum += ranks[i]
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, errors.New("eval: AUC needs at least one outlier and one inlier")
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg)), nil
}

// ROCPoint is one (false-positive-rate, true-positive-rate) coordinate.
type ROCPoint struct {
	FPR float64
	TPR float64
}

// ROC returns the full ROC curve, sweeping the decision threshold from the
// highest score downwards. Tied scores advance in a single step (the curve
// moves diagonally through ties). The curve starts at (0,0) and ends at
// (1,1).
func ROC(scores []float64, outlier []bool) ([]ROCPoint, error) {
	if len(scores) != len(outlier) {
		return nil, errors.New("eval: scores and labels differ in length")
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var nPos, nNeg int
	for _, o := range outlier {
		if o {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return nil, errors.New("eval: ROC needs at least one outlier and one inlier")
	}

	curve := []ROCPoint{{0, 0}}
	tp, fp := 0, 0
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		for k := i; k <= j; k++ {
			if outlier[idx[k]] {
				tp++
			} else {
				fp++
			}
		}
		curve = append(curve, ROCPoint{
			FPR: float64(fp) / float64(nNeg),
			TPR: float64(tp) / float64(nPos),
		})
		i = j + 1
	}
	return curve, nil
}

// AUCFromROC integrates a ROC curve with the trapezoid rule. For curves
// produced by ROC this matches AUC up to floating-point error; it exists
// for testing the consistency of the two code paths and for integrating
// externally produced curves.
func AUCFromROC(curve []ROCPoint) float64 {
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// PrecisionAtN returns the fraction of true outliers among the n
// highest-scoring objects. Ties at the boundary are resolved by stable
// order. n is clamped to the number of objects.
func PrecisionAtN(scores []float64, outlier []bool, n int) (float64, error) {
	if len(scores) != len(outlier) {
		return 0, errors.New("eval: scores and labels differ in length")
	}
	if n <= 0 {
		return 0, errors.New("eval: n must be positive")
	}
	if n > len(scores) {
		n = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	hits := 0
	for _, i := range idx[:n] {
		if outlier[i] {
			hits++
		}
	}
	return float64(hits) / float64(n), nil
}

// MeanStd aggregates repeated experiment measurements into mean and
// (population) standard deviation, the form Fig. 4 reports.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
