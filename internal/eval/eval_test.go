package eval

import (
	"math"
	"testing"
	"testing/quick"

	"hics/internal/rng"
)

func TestAUCPerfect(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.9, 0.95}
	labels := []bool{false, false, true, true}
	auc, err := AUC(scores, labels)
	if err != nil || auc != 1 {
		t.Errorf("AUC = %v, err %v", auc, err)
	}
}

func TestAUCInverted(t *testing.T) {
	scores := []float64{0.9, 0.95, 0.1, 0.2}
	labels := []bool{false, false, true, true}
	auc, _ := AUC(scores, labels)
	if auc != 0 {
		t.Errorf("AUC = %v, want 0", auc)
	}
}

func TestAUCRandomHalf(t *testing.T) {
	// All scores tied: AUC must be exactly 0.5 under the midrank convention.
	scores := []float64{1, 1, 1, 1, 1, 1}
	labels := []bool{true, false, true, false, true, false}
	auc, _ := AUC(scores, labels)
	if auc != 0.5 {
		t.Errorf("tied AUC = %v, want 0.5", auc)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// Hand-computed: pos scores {3, 1}, neg scores {2, 0}.
	// Pairs: (3>2), (3>0), (1<2), (1>0) → 3 of 4 → AUC 0.75.
	scores := []float64{3, 1, 2, 0}
	labels := []bool{true, true, false, false}
	auc, _ := AUC(scores, labels)
	if auc != 0.75 {
		t.Errorf("AUC = %v, want 0.75", auc)
	}
}

func TestAUCWithTieBetweenClasses(t *testing.T) {
	// pos {2}, neg {2, 0}: pair (2,2) counts 0.5, (2,0) counts 1 → 0.75.
	scores := []float64{2, 2, 0}
	labels := []bool{true, false, false}
	auc, _ := AUC(scores, labels)
	if auc != 0.75 {
		t.Errorf("tied-class AUC = %v, want 0.75", auc)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := AUC([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Error("single-class labels should fail")
	}
}

func TestROCEndpoints(t *testing.T) {
	scores := []float64{4, 3, 2, 1}
	labels := []bool{true, false, true, false}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Errorf("curve start = %+v", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve end = %+v", last)
	}
}

func TestROCMonotone(t *testing.T) {
	r := rng.New(7)
	scores := make([]float64, 200)
	labels := make([]bool, 200)
	for i := range scores {
		scores[i] = math.Floor(r.Float64()*20) / 20 // create ties
		labels[i] = r.Float64() < 0.1
	}
	labels[0] = true
	labels[1] = false
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("ROC not monotone at %d: %+v -> %+v", i, curve[i-1], curve[i])
		}
	}
}

func TestAUCFromROCMatchesAUC(t *testing.T) {
	r := rng.New(8)
	scores := make([]float64, 500)
	labels := make([]bool, 500)
	for i := range scores {
		scores[i] = math.Floor(r.Float64()*50) / 50
		labels[i] = r.Float64() < 0.08
	}
	labels[0], labels[1] = true, false
	direct, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	integrated := AUCFromROC(curve)
	if math.Abs(direct-integrated) > 1e-9 {
		t.Errorf("rank AUC %v != trapezoid AUC %v", direct, integrated)
	}
}

func TestPrecisionAtN(t *testing.T) {
	scores := []float64{9, 8, 7, 1}
	labels := []bool{true, false, true, false}
	p, err := PrecisionAtN(scores, labels, 2)
	if err != nil || p != 0.5 {
		t.Errorf("P@2 = %v, err %v", p, err)
	}
	p, _ = PrecisionAtN(scores, labels, 3)
	if math.Abs(p-2.0/3.0) > 1e-12 {
		t.Errorf("P@3 = %v", p)
	}
	// n beyond length clamps.
	p, _ = PrecisionAtN(scores, labels, 100)
	if p != 0.5 {
		t.Errorf("P@all = %v", p)
	}
	if _, err := PrecisionAtN(scores, labels, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := PrecisionAtN(scores, labels[:2], 1); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 6})
	if mean != 4 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(std-math.Sqrt(8.0/3.0)) > 1e-12 {
		t.Errorf("std = %v", std)
	}
	mean, std = MeanStd(nil)
	if !math.IsNaN(mean) || !math.IsNaN(std) {
		t.Error("empty MeanStd should be NaN")
	}
}

// Property: AUC is always within [0,1] and flipping labels mirrors it.
func TestQuickAUCBounds(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		m := int(n%100) + 2
		scores := make([]float64, m)
		labels := make([]bool, m)
		for i := range scores {
			scores[i] = math.Floor(r.Float64()*10) / 10
			labels[i] = r.Float64() < 0.3
		}
		labels[0], labels[1] = true, false // both classes present
		auc, err := AUC(scores, labels)
		if err != nil || auc < 0 || auc > 1 {
			return false
		}
		inv := make([]bool, m)
		for i := range inv {
			inv[i] = !labels[i]
		}
		aucInv, err := AUC(scores, inv)
		if err != nil {
			return false
		}
		return math.Abs(auc+aucInv-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a constant to all scores never changes AUC
// (AUC is rank-based).
func TestQuickAUCShiftInvariant(t *testing.T) {
	f := func(seed uint64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			shift = 1
		}
		shift = math.Mod(shift, 1e6)
		r := rng.New(seed)
		scores := make([]float64, 50)
		labels := make([]bool, 50)
		for i := range scores {
			scores[i] = float64(r.Intn(20))
			labels[i] = r.Float64() < 0.2
		}
		labels[0], labels[1] = true, false
		a1, err1 := AUC(scores, labels)
		shifted := make([]float64, len(scores))
		for i := range shifted {
			shifted[i] = scores[i] + shift
		}
		a2, err2 := AUC(shifted, labels)
		return err1 == nil && err2 == nil && math.Abs(a1-a2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
