package orca

import (
	"sort"
	"testing"
	"testing/quick"

	"hics/internal/dataset"
	"hics/internal/lof"
	"hics/internal/neighbors"
	"hics/internal/rng"
)

// blob builds a tight cluster with `outliers` far-away points appended.
func blob(seed uint64, n, outliers int) *dataset.Dataset {
	r := rng.New(seed)
	x := make([]float64, n+outliers)
	y := make([]float64, n+outliers)
	for i := 0; i < n; i++ {
		x[i] = r.NormalScaled(0.5, 0.03)
		y[i] = r.NormalScaled(0.5, 0.03)
	}
	for i := 0; i < outliers; i++ {
		x[n+i] = 2 + float64(i)
		y[n+i] = 2 + float64(i)
	}
	return dataset.MustNew(nil, [][]float64{x, y})
}

func TestTopOutliersFindsPlanted(t *testing.T) {
	ds := blob(1, 200, 3)
	out, _, err := TopOutliers(ds, []int{0, 1}, Params{K: 10, TopN: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d outliers", len(out))
	}
	ids := map[int]bool{}
	for _, o := range out {
		ids[o.ID] = true
	}
	for i := 200; i < 203; i++ {
		if !ids[i] {
			t.Errorf("planted outlier %d not found: %v", i, out)
		}
	}
	// Descending order.
	for i := 1; i < len(out); i++ {
		if out[i].Score > out[i-1].Score {
			t.Error("results not sorted descending")
		}
	}
}

func TestTopOutliersMatchesExhaustive(t *testing.T) {
	// ORCA's pruning must not change the result set, only the work done.
	ds := blob(2, 150, 5)
	orcaOut, _, err := TopOutliers(ds, []int{0, 1}, Params{K: 8, TopN: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive reference: full kNN scores, take top 5.
	ref, err := lof.KNNScores(ds, []int{0, 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, len(ref))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ref[idx[a]] > ref[idx[b]] })
	want := map[int]bool{}
	for _, i := range idx[:5] {
		want[i] = true
	}
	for _, o := range orcaOut {
		if !want[o.ID] {
			t.Errorf("ORCA found %d which is not in the exhaustive top-5", o.ID)
		}
	}
}

func TestPruningActuallyPrunes(t *testing.T) {
	// Pin the brute backend: the pruned scan is what this test measures.
	ds := blob(4, 400, 3)
	_, stats, err := TopOutliers(ds, []int{0, 1}, Params{K: 10, TopN: 3, Seed: 5, Index: neighbors.KindBrute})
	if err != nil {
		t.Fatal(err)
	}
	n := ds.N()
	full := n * (n - 1)
	if stats.DistanceComputations >= full {
		t.Errorf("no savings: %d distance computations vs %d exhaustive", stats.DistanceComputations, full)
	}
	if stats.Pruned == 0 {
		t.Error("no candidate was pruned on easy data")
	}
	// On this clustered data the bulk of candidates must be pruned.
	if stats.DistanceComputations > full/2 {
		t.Errorf("pruning too weak: %d of %d distances computed", stats.DistanceComputations, full)
	}
}

func TestTopOutliersErrors(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{1}})
	if _, _, err := TopOutliers(ds, []int{0}, Params{}); err == nil {
		t.Error("single object should fail")
	}
	ds2 := dataset.MustNew(nil, [][]float64{{1, 2}})
	if _, _, err := TopOutliers(ds2, []int{5}, Params{}); err == nil {
		t.Error("bad dims should fail")
	}
}

func TestTopOutliersClamps(t *testing.T) {
	ds := blob(6, 20, 2)
	out, _, err := TopOutliers(ds, []int{0, 1}, Params{K: 100, TopN: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 22 {
		t.Errorf("TopN clamp: got %d", len(out))
	}
}

func TestScorerAdapter(t *testing.T) {
	ds := blob(7, 100, 2)
	s := Scorer{K: 8, TopN: 5, Seed: 2}
	scores, err := s.Score(ds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != ds.N() {
		t.Fatalf("score count %d", len(scores))
	}
	// Planted outliers carry positive scores, bulk is zero.
	if scores[100] <= 0 || scores[101] <= 0 {
		t.Error("planted outliers scored zero")
	}
	zeros := 0
	for _, v := range scores {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 90 {
		t.Errorf("expected most objects pruned to zero, got %d zeros", zeros)
	}
	if s.Name() != "ORCA" {
		t.Errorf("Name = %q", s.Name())
	}
}

// Property: ORCA's result is invariant to the random seed (the pruning
// rule is exact), as long as scores are distinct.
func TestQuickSeedInvariance(t *testing.T) {
	f := func(seed1, seed2 uint64) bool {
		ds := blob(9, 80, 3)
		a, _, err1 := TopOutliers(ds, []int{0, 1}, Params{K: 5, TopN: 3, Seed: seed1})
		b, _, err2 := TopOutliers(ds, []int{0, 1}, Params{K: 5, TopN: 3, Seed: seed2})
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestIndexEquivalence: the index-backed path must mine the identical
// top-n with bit-identical scores as the classic pruned scan.
func TestIndexEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		for _, n := range []int{100, 400, 800} {
			ds := blob(seed, n, 5)
			brute, _, err := TopOutliers(ds, []int{0, 1}, Params{K: 10, TopN: 8, Seed: seed, Index: neighbors.KindBrute})
			if err != nil {
				t.Fatal(err)
			}
			tree, _, err := TopOutliers(ds, []int{0, 1}, Params{K: 10, TopN: 8, Seed: seed, Index: neighbors.KindKDTree})
			if err != nil {
				t.Fatal(err)
			}
			if len(brute) != len(tree) {
				t.Fatalf("seed=%d n=%d: %d outliers brute vs %d kdtree", seed, n, len(brute), len(tree))
			}
			for i := range brute {
				if brute[i] != tree[i] {
					t.Fatalf("seed=%d n=%d: outlier %d brute %+v != kdtree %+v", seed, n, i, brute[i], tree[i])
				}
			}
		}
	}
}

func BenchmarkORCAvsExhaustive(b *testing.B) {
	ds := blob(1, 1000, 5)
	b.Run("orca", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := TopOutliers(ds, []int{0, 1}, Params{K: 10, TopN: 5, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lof.KNNScores(ds, []int{0, 1}, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}
