// Package orca implements the randomized distance-based outlier miner of
// Bay & Schwabacher ("Mining distance-based outliers in near linear time
// with randomization and a simple pruning rule", KDD 2003), which the
// paper's future work names as the efficiency upgrade for the ranking
// step: "ORCA would improve the efficiency from a quadratic to a linear
// runtime in the outlier ranking step."
//
// ORCA scores an object by its average distance to its k nearest
// neighbors and reports the top-n outliers. Two execution paths feed that
// score from the internal/neighbors index subsystem:
//
//   - Brute backend: the classic randomized scan with the pruning rule —
//     while refining a candidate's k-NN set against the shuffled database,
//     the running average of the k nearest distances found so far is an
//     upper bound on the final score, and a candidate is abandoned as soon
//     as that bound drops below the weakest score in the current top-n.
//   - KD-tree backend: each candidate's exact k-NN set comes straight from
//     the spatial index, which replaces the pruning heuristic outright.
//
// Both paths sum the k nearest distances in ascending order, so their
// scores — and therefore the mined top-n — are bit-for-bit identical.
package orca

import (
	"fmt"
	"sort"

	"hics/internal/dataset"
	"hics/internal/neighbors"
	"hics/internal/ranking"
	"hics/internal/rng"
)

// Params configures the ORCA run. Zero values select k=10, n=30 and
// automatic neighbor-index selection.
type Params struct {
	// K is the neighborhood size of the distance score.
	K int
	// TopN is the number of outliers to mine.
	TopN int
	// Seed drives the randomized candidate and scan orders.
	Seed uint64
	// Index selects the neighbor-index backend. The brute backend runs the
	// classic pruned scan; the k-d tree backend answers each candidate's
	// k-NN query from the index.
	Index neighbors.Kind
}

func (p Params) withDefaults() Params {
	if p.K <= 0 {
		p.K = 10
	}
	if p.TopN <= 0 {
		p.TopN = 30
	}
	return p
}

// Outlier is one mined outlier with its average-kNN-distance score.
type Outlier struct {
	ID    int
	Score float64
}

// Stats reports the work ORCA performed, for the pruning-efficiency bench.
// The index-backed path performs no pairwise scan, so both counters stay
// zero there.
type Stats struct {
	// DistanceComputations counts evaluated object pairs.
	DistanceComputations int
	// Pruned counts candidates abandoned by the cutoff rule.
	Pruned int
}

// TopOutliers mines the TopN outliers of ds in the given subspace.
// Results are sorted by descending score.
func TopOutliers(ds *dataset.Dataset, dims []int, p Params) ([]Outlier, Stats, error) {
	p = p.withDefaults()
	idx, err := neighbors.New(ds, dims, p.Index)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("orca: %w", err)
	}
	n := ds.N()
	if n < 2 {
		return nil, Stats{}, fmt.Errorf("orca: need at least 2 objects, have %d", n)
	}
	k := p.K
	if k > n-1 {
		k = n - 1
	}
	topN := p.TopN
	if topN > n {
		topN = n
	}

	r := rng.New(p.Seed)
	candOrder := r.Perm(n)

	if idx.Kind() == neighbors.KindKDTree {
		return topOutliersIndexed(idx, candOrder, k, topN)
	}
	return topOutliersScan(idx, candOrder, r.Perm(n), k, topN)
}

// topOutliersScan is the classic ORCA: randomized scan with pruning.
func topOutliersScan(idx neighbors.Index, candOrder, scanOrder []int, k, topN int) ([]Outlier, Stats, error) {
	var stats Stats
	var top []Outlier // sorted ascending by score; top[0] is the cutoff
	cutoff := 0.0

	// kdist holds the current nearest distances of the candidate being
	// scanned, kept sorted ascending once full; sum is their ascending-order
	// total, recomputed after every change so the final score is canonical.
	kdist := make([]float64, 0, k)
	for _, q := range candOrder {
		kdist = kdist[:0]
		sum := 0.0
		pruned := false
		for _, o := range scanOrder {
			if o == q {
				continue
			}
			d := idx.Dist(q, o)
			stats.DistanceComputations++
			if len(kdist) < k {
				kdist = append(kdist, d)
				if len(kdist) == k {
					sort.Float64s(kdist) // establish order once full
					sum = sumAsc(kdist)
				}
			} else if d < kdist[k-1] {
				// replace the largest, keep sorted by insertion
				i := sort.SearchFloat64s(kdist[:k-1], d)
				copy(kdist[i+1:], kdist[i:k-1])
				kdist[i] = d
				sum = sumAsc(kdist)
			}
			// Pruning: once k neighbors are known, the running average can
			// only decrease; below the cutoff the candidate is done for.
			if len(kdist) == k && len(top) == topN && sum/float64(k) < cutoff {
				pruned = true
				stats.Pruned++
				break
			}
		}
		if pruned {
			continue
		}
		if len(kdist) < k {
			sort.Float64s(kdist)
			sum = sumAsc(kdist)
		}
		score := sum / float64(len(kdist))
		top, cutoff = updateTop(top, topN, Outlier{ID: q, Score: score}, cutoff)
	}
	return descending(top), stats, nil
}

// topOutliersIndexed mines the same top-n with exact per-candidate k-NN
// queries against the spatial index instead of the pruned scan.
func topOutliersIndexed(idx neighbors.Index, candOrder []int, k, topN int) ([]Outlier, Stats, error) {
	var top []Outlier
	cutoff := 0.0
	sc := idx.NewScratch()
	var buf []neighbors.Neighbor
	dists := make([]float64, 0, k+8)
	for _, q := range candOrder {
		nb, _ := idx.KNN(q, k, sc, buf)
		buf = nb[:0]
		dists = dists[:0]
		for _, x := range nb {
			dists = append(dists, x.Dist)
		}
		// The neighborhood may exceed k on ties; the score uses exactly the
		// k nearest, summed ascending like the scan path.
		sort.Float64s(dists)
		if len(dists) > k {
			dists = dists[:k]
		}
		score := sumAsc(dists) / float64(len(dists))
		top, cutoff = updateTop(top, topN, Outlier{ID: q, Score: score}, cutoff)
	}
	return descending(top), Stats{}, nil
}

// sumAsc totals xs front to back; both paths feed it ascending-sorted
// distances so the floating-point result is identical across backends.
func sumAsc(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

// updateTop folds one scored candidate into the score-ascending top list.
func updateTop(top []Outlier, topN int, o Outlier, cutoff float64) ([]Outlier, float64) {
	if len(top) < topN {
		top = insertAsc(top, o)
		if len(top) == topN {
			cutoff = top[0].Score
		}
	} else if o.Score > cutoff {
		top = insertAsc(top[1:], o)
		cutoff = top[0].Score
	}
	return top, cutoff
}

func descending(top []Outlier) []Outlier {
	out := make([]Outlier, len(top))
	for i, o := range top {
		out[len(top)-1-i] = o
	}
	return out
}

// insertAsc inserts o into the score-ascending slice.
func insertAsc(list []Outlier, o Outlier) []Outlier {
	i := sort.Search(len(list), func(i int) bool { return list[i].Score >= o.Score })
	list = append(list, Outlier{})
	copy(list[i+1:], list[i:])
	list[i] = o
	return list
}

// Scorer adapts ORCA to the ranking pipeline: mined outliers keep their
// distance scores, everything else scores zero. The resulting vector is
// a partial ranking — exactly what ORCA trades for its speed.
type Scorer struct {
	// K is the neighborhood size (0 = 10).
	K int
	// TopN is the number of outliers mined per subspace (0 = 30).
	TopN int
	// Seed drives the randomized scan orders.
	Seed uint64
	// Index selects the neighbor-index backend.
	Index neighbors.Kind
}

// Score implements ranking.Scorer.
func (s Scorer) Score(ds *dataset.Dataset, dims []int) ([]float64, error) {
	out, _, err := TopOutliers(ds, dims, Params{K: s.K, TopN: s.TopN, Seed: s.Seed, Index: s.Index})
	if err != nil {
		return nil, err
	}
	scores := make([]float64, ds.N())
	for _, o := range out {
		scores[o.ID] = o.Score
	}
	return scores, nil
}

// Name implements ranking.Scorer.
func (Scorer) Name() string { return "ORCA" }

// WithIndex implements ranking.IndexableScorer.
func (s Scorer) WithIndex(kind neighbors.Kind) ranking.Scorer {
	s.Index = kind
	return s
}
