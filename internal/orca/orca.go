// Package orca implements the randomized distance-based outlier miner of
// Bay & Schwabacher ("Mining distance-based outliers in near linear time
// with randomization and a simple pruning rule", KDD 2003), which the
// paper's future work names as the efficiency upgrade for the ranking
// step: "ORCA would improve the efficiency from a quadratic to a linear
// runtime in the outlier ranking step."
//
// ORCA scores an object by its average distance to its k nearest
// neighbors and reports the top-n outliers. Its speed comes from a
// pruning rule: while scanning the (randomly shuffled) database to refine
// a candidate's k-NN set, the current average over the k nearest
// distances found so far is an upper bound on the final score — as soon
// as it drops below the weakest score in the current top-n, the candidate
// cannot be a top outlier and the scan aborts. With a randomized scan
// order the cutoff rises quickly and most candidates are pruned after a
// handful of distance computations.
package orca

import (
	"fmt"
	"sort"

	"hics/internal/dataset"
	"hics/internal/knn"
	"hics/internal/rng"
)

// Params configures the ORCA run. Zero values select k=10 and n=30.
type Params struct {
	// K is the neighborhood size of the distance score.
	K int
	// TopN is the number of outliers to mine.
	TopN int
	// Seed drives the randomized candidate and scan orders.
	Seed uint64
}

func (p Params) withDefaults() Params {
	if p.K <= 0 {
		p.K = 10
	}
	if p.TopN <= 0 {
		p.TopN = 30
	}
	return p
}

// Outlier is one mined outlier with its average-kNN-distance score.
type Outlier struct {
	ID    int
	Score float64
}

// Stats reports the work ORCA performed, for the pruning-efficiency bench.
type Stats struct {
	// DistanceComputations counts evaluated object pairs.
	DistanceComputations int
	// Pruned counts candidates abandoned by the cutoff rule.
	Pruned int
}

// TopOutliers mines the TopN outliers of ds in the given subspace.
// Results are sorted by descending score.
func TopOutliers(ds *dataset.Dataset, dims []int, p Params) ([]Outlier, Stats, error) {
	p = p.withDefaults()
	searcher, err := knn.New(ds, dims)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("orca: %w", err)
	}
	n := ds.N()
	if n < 2 {
		return nil, Stats{}, fmt.Errorf("orca: need at least 2 objects, have %d", n)
	}
	k := p.K
	if k > n-1 {
		k = n - 1
	}
	topN := p.TopN
	if topN > n {
		topN = n
	}

	r := rng.New(p.Seed)
	candOrder := r.Perm(n)
	scanOrder := r.Perm(n)

	var stats Stats
	var top []Outlier // sorted ascending by score; top[0] is the cutoff
	cutoff := 0.0

	// kdist is a max-heap (simple slice, small k) of the current nearest
	// distances of the candidate being scanned.
	kdist := make([]float64, 0, k)
	for _, q := range candOrder {
		kdist = kdist[:0]
		sum := 0.0
		pruned := false
		for _, o := range scanOrder {
			if o == q {
				continue
			}
			d := searcher.Dist(q, o)
			stats.DistanceComputations++
			if len(kdist) < k {
				kdist = append(kdist, d)
				sum += d
				if len(kdist) == k {
					sort.Float64s(kdist) // establish order once full
				}
			} else if d < kdist[k-1] {
				sum += d - kdist[k-1]
				// replace the largest, keep sorted by insertion
				i := sort.SearchFloat64s(kdist[:k-1], d)
				copy(kdist[i+1:], kdist[i:k-1])
				kdist[i] = d
			}
			// Pruning: once k neighbors are known, the running average can
			// only decrease; below the cutoff the candidate is done for.
			if len(kdist) == k && len(top) == topN && sum/float64(k) < cutoff {
				pruned = true
				stats.Pruned++
				break
			}
		}
		if pruned {
			continue
		}
		score := sum / float64(len(kdist))
		if len(top) < topN {
			top = insertAsc(top, Outlier{ID: q, Score: score})
			if len(top) == topN {
				cutoff = top[0].Score
			}
		} else if score > cutoff {
			top = insertAsc(top[1:], Outlier{ID: q, Score: score})
			cutoff = top[0].Score
		}
	}

	// Return descending.
	out := make([]Outlier, len(top))
	for i, o := range top {
		out[len(top)-1-i] = o
	}
	return out, stats, nil
}

// insertAsc inserts o into the score-ascending slice.
func insertAsc(list []Outlier, o Outlier) []Outlier {
	i := sort.Search(len(list), func(i int) bool { return list[i].Score >= o.Score })
	list = append(list, Outlier{})
	copy(list[i+1:], list[i:])
	list[i] = o
	return list
}

// Scorer adapts ORCA to the ranking pipeline: mined outliers keep their
// distance scores, everything pruned scores zero. The resulting vector is
// a partial ranking — exactly what ORCA trades for its speed.
type Scorer struct {
	// K is the neighborhood size (0 = 10).
	K int
	// TopN is the number of outliers mined per subspace (0 = 30).
	TopN int
	// Seed drives the randomized scan orders.
	Seed uint64
}

// Score implements ranking.Scorer.
func (s Scorer) Score(ds *dataset.Dataset, dims []int) ([]float64, error) {
	out, _, err := TopOutliers(ds, dims, Params{K: s.K, TopN: s.TopN, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	scores := make([]float64, ds.N())
	for _, o := range out {
		scores[o.ID] = o.Score
	}
	return scores, nil
}

// Name implements ranking.Scorer.
func (Scorer) Name() string { return "ORCA" }
