package experiments

import (
	"context"
	"fmt"
	"io"

	"hics/internal/eval"
	"hics/internal/ranking"
	"hics/internal/uci"
)

// realScale returns the dataset scale factor for the simulated UCI analogs:
// full size normally, strongly reduced in quick mode (the ranking step is
// quadratic in N).
func realScale(cfg Config, specN int) float64 {
	cap := cfg.sizing().realCap
	if cap == 0 || specN <= cap {
		return 1
	}
	return float64(cap) / float64(specN)
}

// Fig10 reproduces the ROC plots of the Ionosphere and Pendigits
// experiments: one (FPR, TPR) series per competitor, printed at a fixed
// grid of false-positive rates so the curves can be compared and plotted.
func Fig10(ctx context.Context, w io.Writer, cfg Config) error {
	for _, name := range []string{"Ionosphere", "Pendigits"} {
		spec, err := uci.Lookup(name)
		if err != nil {
			return err
		}
		l, err := uci.Generate(spec, realScale(cfg, spec.N))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# Fig 10 — ROC curve, %s (N=%d, D=%d, outliers=%d)\n",
			name, l.Data.N(), l.Data.D(), l.NumOutliers())
		grid := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9}
		fmt.Fprintf(w, "%-10s", "method")
		for _, f := range grid {
			fmt.Fprintf(w, " %8s", fmt.Sprintf("FPR=%.2f", f))
		}
		fmt.Fprintln(w, "      AUC")
		for _, r := range append([]ranking.Ranker{newLOF(cfg)}, subspaceCompetitors(cfg, cfg.Seed)...) {
			res, err := r.RankContext(ctx, l.Data)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", r.Name(), name, err)
			}
			curve, err := eval.ROC(res.Scores, l.Outlier)
			if err != nil {
				return err
			}
			auc := eval.AUCFromROC(curve)
			fmt.Fprintf(w, "%-10s", displayName(r))
			for _, f := range grid {
				fmt.Fprintf(w, " %8.3f", tprAt(curve, f))
			}
			fmt.Fprintf(w, " %8.3f\n", auc)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// tprAt interpolates the true positive rate of a ROC curve at the given
// false positive rate.
func tprAt(curve []eval.ROCPoint, fpr float64) float64 {
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR >= fpr {
			a, b := curve[i-1], curve[i]
			if b.FPR == a.FPR {
				return b.TPR
			}
			t := (fpr - a.FPR) / (b.FPR - a.FPR)
			return a.TPR + t*(b.TPR-a.TPR)
		}
	}
	return 1
}

// Fig11 reproduces the real-world results table: AUC and runtime of the
// five competitors on all eight (simulated) UCI datasets.
func Fig11(ctx context.Context, w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "# Fig 11 — results on (simulated) real-world datasets")
	fmt.Fprintf(w, "%-12s %8s | %7s %7s %7s %7s %7s | %8s %8s %8s %8s %8s\n",
		"dataset", "shape",
		"LOF", "HiCS", "Enclus", "RIS", "RANDSUB",
		"t(LOF)", "t(HiCS)", "t(Encl)", "t(RIS)", "t(RAND)")
	for _, spec := range uci.Specs {
		l, err := uci.Generate(spec, realScale(cfg, spec.N))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %8s |", spec.Name, fmt.Sprintf("%dx%d", l.Data.N(), l.Data.D()))
		aucs := make([]float64, 0, 5)
		secs := make([]float64, 0, 5)
		for _, r := range append([]ranking.Ranker{newLOF(cfg)}, subspaceCompetitors(cfg, cfg.Seed)...) {
			auc, elapsed, err := rankAUC(ctx, r, l)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", r.Name(), spec.Name, err)
			}
			aucs = append(aucs, auc)
			secs = append(secs, elapsed.Seconds())
		}
		for _, a := range aucs {
			fmt.Fprintf(w, " %6.2f%%", 100*a)
		}
		fmt.Fprint(w, " |")
		for _, s := range secs {
			fmt.Fprintf(w, " %8.2f", s)
		}
		fmt.Fprintln(w)
	}
	return nil
}
