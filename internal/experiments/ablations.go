package experiments

import (
	"context"
	"fmt"
	"io"

	"hics/internal/core"
	"hics/internal/eval"
	"hics/internal/ranking"
)

// AblationWTvsKS compares the two statistical instantiations of the
// contrast measure (DESIGN.md ablation 1) at paper-default parameters.
func AblationWTvsKS(ctx context.Context, w io.Writer, cfg Config) error {
	reps := cfg.sizing().paramReps
	data, err := paramSweepData(cfg, reps)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Ablation — Welch t-test vs Kolmogorov-Smirnov deviation")
	fmt.Fprintf(w, "%-10s %10s %12s\n", "variant", "AUC", "runtime")
	for _, tt := range []core.Test{core.WelchT, core.KolmogorovSmirnov} {
		name := "HiCS_WT"
		if tt == core.KolmogorovSmirnov {
			name = "HiCS_KS"
		}
		var aucs, secs []float64
		for _, l := range data {
			p := hicsParams(cfg.Seed)
			p.Test = tt
			auc, elapsed, err := rankAUC(ctx, cfg.hicsVariant(p), l)
			if err != nil {
				return err
			}
			aucs = append(aucs, auc)
			secs = append(secs, elapsed.Seconds())
		}
		aucMean, _ := eval.MeanStd(aucs)
		secMean, _ := eval.MeanStd(secs)
		fmt.Fprintf(w, "%-10s %9.1f%% %11.2fs\n", name, 100*aucMean, secMean)
	}
	return nil
}

// AblationAggregation compares average vs max aggregation of per-subspace
// scores (Sec. IV-C; DESIGN.md ablation 2). The paper argues max is
// sensitive to fluctuations when many subspaces are ranked.
func AblationAggregation(ctx context.Context, w io.Writer, cfg Config) error {
	reps := cfg.sizing().paramReps
	data, err := paramSweepData(cfg, reps)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Ablation — average vs max aggregation (Definition 1)")
	fmt.Fprintf(w, "%-10s %10s\n", "agg", "AUC")
	for _, agg := range []ranking.Aggregation{ranking.Average, ranking.Max} {
		var aucs []float64
		for _, l := range data {
			pipe := cfg.pipeline("hics", "lof", cfg.Seed)
			pipe.Agg = agg
			auc, _, err := rankAUC(ctx, pipe, l)
			if err != nil {
				return err
			}
			aucs = append(aucs, auc)
		}
		mean, _ := eval.MeanStd(aucs)
		fmt.Fprintf(w, "%-10s %9.1f%%\n", agg.String(), 100*mean)
	}
	return nil
}

// AblationPruning compares the full framework against one with redundancy
// pruning disabled (Sec. IV-B; DESIGN.md ablation 4).
func AblationPruning(ctx context.Context, w io.Writer, cfg Config) error {
	reps := cfg.sizing().paramReps
	data, err := paramSweepData(cfg, reps)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Ablation — redundancy pruning of dominated subspaces")
	fmt.Fprintf(w, "%-12s %10s\n", "pruning", "AUC")
	for _, disable := range []bool{false, true} {
		var aucs []float64
		for _, l := range data {
			p := hicsParams(cfg.Seed)
			p.DisablePruning = disable
			auc, _, err := rankAUC(ctx, cfg.hicsVariant(p), l)
			if err != nil {
				return err
			}
			aucs = append(aucs, auc)
		}
		mean, _ := eval.MeanStd(aucs)
		name := "enabled"
		if disable {
			name = "disabled"
		}
		fmt.Fprintf(w, "%-12s %9.1f%%\n", name, 100*mean)
	}
	return nil
}

// AblationScorer compares the LOF instantiation with the kNN-distance
// score the paper names as a future-work alternative (ORCA-style).
func AblationScorer(ctx context.Context, w io.Writer, cfg Config) error {
	reps := cfg.sizing().paramReps
	data, err := paramSweepData(cfg, reps)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Ablation — LOF vs kNN-distance scorer in the ranking step")
	fmt.Fprintf(w, "%-10s %10s %12s\n", "scorer", "AUC", "runtime")
	for _, scorer := range []string{"lof", "knn"} {
		var aucs, secs []float64
		pipe := cfg.pipeline("hics", scorer, cfg.Seed)
		for _, l := range data {
			auc, elapsed, err := rankAUC(ctx, pipe, l)
			if err != nil {
				return err
			}
			aucs = append(aucs, auc)
			secs = append(secs, elapsed.Seconds())
		}
		aucMean, _ := eval.MeanStd(aucs)
		secMean, _ := eval.MeanStd(secs)
		fmt.Fprintf(w, "%-10s %9.1f%% %11.2fs\n", pipe.Scorer.Name(), 100*aucMean, secMean)
	}
	return nil
}

// Registry maps experiment names to their implementations, in the order
// cmd/hicsbench runs them for "all".
var Registry = []struct {
	Name string
	Desc string
	Run  Func
}{
	{"fig4", "AUC vs dimensionality (synthetic)", Fig4},
	{"fig5", "runtime vs dimensionality (synthetic)", Fig5},
	{"fig6", "runtime vs DB size (synthetic)", Fig6},
	{"fig7", "AUC vs Monte Carlo iterations M", Fig7},
	{"fig8", "AUC vs slice size alpha", Fig8},
	{"fig9", "AUC and runtime vs candidate cutoff", Fig9},
	{"fig10", "ROC curves (Ionosphere, Pendigits analogs)", Fig10},
	{"fig11", "real-world table (8 simulated UCI datasets)", Fig11},
	{"abl-test", "ablation: Welch vs KS deviation", AblationWTvsKS},
	{"abl-agg", "ablation: average vs max aggregation", AblationAggregation},
	{"abl-prune", "ablation: redundancy pruning on/off", AblationPruning},
	{"abl-scorer", "ablation: LOF vs kNN scorer", AblationScorer},
	{"ext-tests", "extension: all four statistical instantiations", ExtTests},
	{"ext-scorers", "extension: LOF/kNN/ORCA/OUTRES ranking steps", ExtScorers},
	{"ext-search", "extension: subspace searchers incl. SURFING", ExtSearchers},
	{"ext-prec", "extension: precision metrics (AP, P@n)", ExtPrecision},
}

// Func is one experiment regeneration: it writes the artifact's table to
// w, observing ctx cooperatively — a cancelled context aborts the run
// mid-sweep with ctx.Err().
type Func func(ctx context.Context, w io.Writer, cfg Config) error

// Lookup finds a registered experiment by name.
func Lookup(name string) (Func, bool) {
	for _, e := range Registry {
		if e.Name == name {
			return e.Run, true
		}
	}
	return nil, false
}
