package experiments

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"hics/internal/eval"
)

// quickCfg keeps the experiment smoke tests fast.
func quickCfg() Config { return Config{Quick: true, Seed: 1} }

// skipInShort gates the experiment regenerations — even in quick mode the
// suite takes minutes, far beyond the CI budget. `go test` without -short
// still exercises everything.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment regeneration skipped in -short mode")
	}
}

// The competitor sets are registry-driven: the default selection is the
// paper's method set, and Config.Searchers swaps in any registered name.
func TestCompetitorSelection(t *testing.T) {
	cfg := quickCfg()
	var names []string
	for _, r := range subspaceCompetitors(cfg, 1) {
		names = append(names, displayName(r))
	}
	want := []string{"HiCS", "Enclus", "RIS", "RANDSUB"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("default competitors = %v, want %v", names, want)
	}

	cfg.Searchers = []string{"surfing", "fullspace"}
	names = names[:0]
	for _, r := range subspaceCompetitors(cfg, 1) {
		names = append(names, displayName(r))
	}
	if !reflect.DeepEqual(names, []string{"SURFING", "LOF"}) {
		t.Errorf("selected competitors = %v, want [SURFING LOF]", names)
	}

	all := allCompetitors(quickCfg(), 1)
	var allNames []string
	for _, r := range all {
		allNames = append(allNames, displayName(r))
	}
	wantAll := []string{"LOF", "HiCS", "Enclus", "RIS", "RANDSUB", "PCALOF1", "PCALOF2"}
	if !reflect.DeepEqual(allNames, wantAll) {
		t.Errorf("allCompetitors = %v, want %v", allNames, wantAll)
	}

	// Selecting fullspace must not duplicate the always-present LOF
	// baseline in the quality figures.
	dup := quickCfg()
	dup.Searchers = []string{"fullspace", "surfing"}
	allNames = allNames[:0]
	for _, r := range allCompetitors(dup, 1) {
		allNames = append(allNames, displayName(r))
	}
	if !reflect.DeepEqual(allNames, []string{"LOF", "SURFING", "PCALOF1", "PCALOF2"}) {
		t.Errorf("allCompetitors with fullspace selected = %v, want single LOF", allNames)
	}
}

func TestFig4And5ShareSweep(t *testing.T) {
	skipInShort(t)
	var buf4, buf5 bytes.Buffer
	cfg := quickCfg()
	if err := Fig4(context.Background(), &buf4, cfg); err != nil {
		t.Fatal(err)
	}
	evaluatedOnce := len(dimsSweepCache)
	if err := Fig5(context.Background(), &buf5, cfg); err != nil {
		t.Fatal(err)
	}
	if len(dimsSweepCache) != evaluatedOnce {
		t.Error("Fig5 re-ran the sweep instead of using the cache")
	}
	out4 := buf4.String()
	for _, m := range []string{"LOF", "HiCS", "Enclus", "RIS", "RANDSUB", "PCALOF1", "PCALOF2"} {
		if !strings.Contains(out4, m) {
			t.Errorf("Fig4 output missing method %s", m)
		}
	}
	out5 := buf5.String()
	if strings.Contains(out5, "PCALOF1") {
		t.Error("Fig5 should omit non-subspace methods")
	}
	for _, m := range []string{"HiCS", "Enclus", "RIS", "RANDSUB"} {
		if !strings.Contains(out5, m) {
			t.Errorf("Fig5 output missing method %s", m)
		}
	}
}

func TestFig4HiCSBeatsLOFInQuickSweep(t *testing.T) {
	skipInShort(t)
	cfg := quickCfg()
	res, err := runDimsSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At the highest dimensionality of the sweep, HiCS must beat full-space
	// LOF — the paper's headline claim.
	last := len(res.dims) - 1
	hics, _ := eval.MeanStd(res.auc["HiCS"][last])
	lof, _ := eval.MeanStd(res.auc["LOF"][last])
	if hics <= lof {
		t.Errorf("HiCS AUC %.3f not above LOF %.3f at D=%d", hics, lof, res.dims[last])
	}
}

func TestFig6Runs(t *testing.T) {
	skipInShort(t)
	var buf bytes.Buffer
	if err := Fig6(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "N=300") {
		t.Errorf("Fig6 output lacks size columns:\n%s", buf.String())
	}
}

func TestFig7Fig8Run(t *testing.T) {
	skipInShort(t)
	var buf bytes.Buffer
	if err := Fig7(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HiCS_WT") || !strings.Contains(buf.String(), "HiCS_KS") {
		t.Error("Fig7 must report both statistical variants")
	}
	buf.Reset()
	if err := Fig8(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a=0.10") {
		t.Errorf("Fig8 output lacks alpha columns:\n%s", buf.String())
	}
}

func TestFig9Runs(t *testing.T) {
	skipInShort(t)
	var buf bytes.Buffer
	if err := Fig9(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "400") {
		t.Errorf("Fig9 output lacks the default cutoff row:\n%s", out)
	}
}

func TestFig10Runs(t *testing.T) {
	skipInShort(t)
	var buf bytes.Buffer
	if err := Fig10(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Ionosphere") || !strings.Contains(out, "Pendigits") {
		t.Error("Fig10 must cover Ionosphere and Pendigits")
	}
}

func TestFig11Runs(t *testing.T) {
	skipInShort(t)
	var buf bytes.Buffer
	if err := Fig11(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"Ann-Thyroid", "Arrhythmia", "Breast", "Diabetes", "Glass", "Ionosphere", "Pendigits"} {
		if !strings.Contains(out, name) {
			t.Errorf("Fig11 output missing dataset %s", name)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	skipInShort(t)
	var buf bytes.Buffer
	if err := AblationWTvsKS(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if err := AblationAggregation(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if err := AblationPruning(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if err := AblationScorer(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range []string{"HiCS_WT", "HiCS_KS", "average", "max", "enabled", "disabled", "LOF", "kNN"} {
		if !strings.Contains(out, s) {
			t.Errorf("ablation output missing %q", s)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	if len(Registry) != 16 {
		t.Errorf("registry has %d entries, want 16", len(Registry))
	}
	for _, e := range Registry {
		if _, ok := Lookup(e.Name); !ok {
			t.Errorf("Lookup(%q) failed", e.Name)
		}
	}
	if _, ok := Lookup("bogus"); ok {
		t.Error("Lookup(bogus) should fail")
	}
}

func TestTprAt(t *testing.T) {
	curve := []eval.ROCPoint{{FPR: 0, TPR: 0}, {FPR: 0.5, TPR: 0.8}, {FPR: 1, TPR: 1}}
	if got := tprAt(curve, 0.25); got != 0.4 {
		t.Errorf("tprAt(0.25) = %v, want 0.4", got)
	}
	if got := tprAt(curve, 0.75); got != 0.9 {
		t.Errorf("tprAt(0.75) = %v, want 0.9", got)
	}
	if got := tprAt(curve, 2); got != 1 {
		t.Errorf("tprAt beyond curve = %v, want 1", got)
	}
}

func TestExtensionsRun(t *testing.T) {
	skipInShort(t)
	var buf bytes.Buffer
	if err := ExtTests(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range []string{"HiCS", "HiCS_KS", "HiCS_MW", "HiCS_CVM"} {
		if !strings.Contains(out, s) {
			t.Errorf("ExtTests output missing %q", s)
		}
	}
	buf.Reset()
	if err := ExtScorers(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, s := range []string{"LOF", "kNN-dist", "ORCA", "OUTRES", "OUTRES-prod"} {
		if !strings.Contains(out, s) {
			t.Errorf("ExtScorers output missing %q", s)
		}
	}
	buf.Reset()
	if err := ExtSearchers(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, s := range []string{"HiCS", "Enclus", "RIS", "SURFING", "RANDSUB"} {
		if !strings.Contains(out, s) {
			t.Errorf("ExtSearchers output missing %q", s)
		}
	}
	buf.Reset()
	if err := ExtPrecision(context.Background(), &buf, quickCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AP") {
		t.Error("ExtPrecision output missing AP column")
	}
}
