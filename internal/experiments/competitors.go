// Package experiments reproduces every table and figure of the paper's
// evaluation section (Sec. V). Each Fig* function regenerates one artifact
// as a plain-text table on the given writer; cmd/hicsbench exposes them as
// subcommands and the root bench_test.go wraps them in testing.B benches.
//
// The harness compares the same competitor set as the paper:
// full-space LOF, HiCS(+LOF), Enclus(+LOF), RIS(+LOF), RANDSUB(+LOF), and
// the two PCA variants, all sharing one LOF parameterization and the
// "best 100 subspaces" budget (Sec. V).
package experiments

import (
	"strings"

	"hics/internal/core"
	"hics/internal/enclus"
	"hics/internal/neighbors"
	"hics/internal/randsub"
	"hics/internal/ranking"
	"hics/internal/ris"
)

// displayName strips the scorer suffix from pipeline names so tables use
// the paper's method labels (all competitors share the LOF scorer anyway).
func displayName(r ranking.Ranker) string {
	return strings.TrimSuffix(r.Name(), "+LOF")
}

// Config controls experiment sizing. The zero value reproduces the paper's
// scale; Medium keeps the full sweep ranges at reduced dataset sizes (the
// recommended mode on a laptop core — the cubic RIS competitor dominates
// the full-scale runtime); Quick shrinks both sizes and sweeps for smoke
// tests.
type Config struct {
	// Quick selects strongly reduced dataset sizes and sweep grids.
	Quick bool
	// Medium keeps the paper's sweep grids at reduced dataset sizes.
	// Quick wins if both are set.
	Medium bool
	// Seed drives dataset generation and all Monte Carlo loops.
	Seed uint64
	// MinPts is the shared LOF neighborhood size (0 = 10, as everywhere).
	MinPts int
}

// sizing collects every experiment's workload parameters for one mode.
type sizing struct {
	dimsN    int   // DB size of the Fig4/5 dimensionality sweep
	dims     []int // dimensionalities of the Fig4/5 sweep
	dimsReps int   // repetitions per dimensionality

	fig6Sizes []int // DB sizes of the Fig6 runtime sweep (D=25)

	fig7Ms      []int     // Monte Carlo iteration sweep
	fig8Alphas  []float64 // slice size sweep
	fig9Cutoffs []int     // candidate cutoff sweep
	paramN      int       // DB size of the parameter studies
	paramD      int       // dimensionality of the parameter studies
	paramReps   int       // repetitions of the parameter studies

	realCap int // max N of the simulated UCI datasets (0 = original size)
}

func (c Config) sizing() sizing {
	switch {
	case c.Quick:
		return sizing{
			dimsN: 300, dims: []int{10, 20, 30}, dimsReps: 2,
			fig6Sizes:   []int{300, 600, 1200},
			fig7Ms:      []int{10, 50, 100},
			fig8Alphas:  []float64{0.05, 0.1, 0.3},
			fig9Cutoffs: []int{50, 200, 400, 800},
			paramN:      300, paramD: 15, paramReps: 2,
			realCap: 800,
		}
	case c.Medium:
		return sizing{
			dimsN: 500, dims: []int{10, 20, 30, 40, 50, 75, 100}, dimsReps: 2,
			fig6Sizes:   []int{500, 1000, 2000, 4000},
			fig7Ms:      []int{10, 25, 50, 100, 200, 500},
			fig8Alphas:  []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5},
			fig9Cutoffs: []int{50, 100, 200, 400, 500, 800, 1600, 5000},
			paramN:      500, paramD: 20, paramReps: 3,
			realCap: 1500,
		}
	default:
		return sizing{
			dimsN: 1000, dims: []int{10, 20, 30, 40, 50, 75, 100}, dimsReps: 3,
			fig6Sizes:   []int{1000, 2500, 5000, 10000},
			fig7Ms:      []int{10, 25, 50, 100, 200, 500},
			fig8Alphas:  []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5},
			fig9Cutoffs: []int{50, 100, 200, 400, 500, 800, 1600, 5000},
			paramN:      1000, paramD: 25, paramReps: 3,
			realCap: 0,
		}
	}
}

func (c Config) minPts() int {
	if c.MinPts > 0 {
		return c.MinPts
	}
	return 10
}

// paperLOF is the LOF scorer of the paper's evaluation, pinned to the
// brute-force neighbor index: the runtime figures (Fig. 5, Fig. 6, Fig. 9)
// are calibrated against the quadratic ranking step, and letting the
// automatic index selection swap in the k-d tree would silently change the
// measured curves (scores are bit-identical either way).
func paperLOF(cfg Config) ranking.LOFScorer {
	return ranking.LOFScorer{MinPts: cfg.minPts(), Index: neighbors.KindBrute}
}

// paperKNN is the kNN-distance scorer with the same pinned backend.
func paperKNN(cfg Config) ranking.KNNScorer {
	return ranking.KNNScorer{K: cfg.minPts(), Index: neighbors.KindBrute}
}

// hicsParams returns the paper-default HiCS parameters with the given seed.
func hicsParams(seed uint64) core.Params {
	return core.Params{M: core.DefaultM, Alpha: core.DefaultAlpha, Cutoff: core.DefaultCutoff, TopK: core.DefaultTopK, Seed: seed}
}

// newHiCS builds the HiCS+LOF pipeline with paper defaults.
func newHiCS(cfg Config, seed uint64) ranking.Pipeline {
	return ranking.Pipeline{
		Searcher: &core.Searcher{Params: hicsParams(seed)},
		Scorer:   paperLOF(cfg),
	}
}

// newLOF builds the full-space LOF baseline.
func newLOF(cfg Config) ranking.Pipeline {
	return ranking.Pipeline{Searcher: ranking.FullSpace{}, Scorer: paperLOF(cfg)}
}

// newEnclus builds the Enclus+LOF competitor.
func newEnclus(cfg Config) ranking.Pipeline {
	return ranking.Pipeline{
		Searcher: &enclus.Searcher{Params: enclus.Params{TopK: 100}},
		Scorer:   paperLOF(cfg),
	}
}

// newRIS builds the RIS+LOF competitor.
func newRIS(cfg Config) ranking.Pipeline {
	return ranking.Pipeline{
		Searcher: &ris.Searcher{Params: ris.Params{TopK: 100}},
		Scorer:   paperLOF(cfg),
	}
}

// newRandSub builds the feature-bagging baseline.
func newRandSub(cfg Config, seed uint64) ranking.Pipeline {
	return ranking.Pipeline{
		Searcher: &randsub.Searcher{Params: randsub.Params{Count: 100, Seed: seed}},
		Scorer:   paperLOF(cfg),
	}
}

// newPCALOF1 reduces to 50% of the attributes before full-space LOF.
func newPCALOF1(cfg Config) ranking.PCAPipeline {
	return ranking.PCAPipeline{
		Components: func(d int) int { return (d + 1) / 2 },
		Scorer:     paperLOF(cfg),
		Label:      "PCALOF1",
	}
}

// newPCALOF2 reduces to a constant 10 principal components.
func newPCALOF2(cfg Config) ranking.PCAPipeline {
	return ranking.PCAPipeline{
		Components: func(d int) int { return 10 },
		Scorer:     paperLOF(cfg),
		Label:      "PCALOF2",
	}
}

// subspaceCompetitors returns the competitor set of the runtime figures
// (Fig. 5/6): the methods based on subspace rankings.
func subspaceCompetitors(cfg Config, seed uint64) []ranking.Ranker {
	return []ranking.Ranker{
		newHiCS(cfg, seed),
		newEnclus(cfg),
		newRIS(cfg),
		newRandSub(cfg, seed),
	}
}

// allCompetitors returns the full Fig. 4 competitor set.
func allCompetitors(cfg Config, seed uint64) []ranking.Ranker {
	return []ranking.Ranker{
		newLOF(cfg),
		newHiCS(cfg, seed),
		newEnclus(cfg),
		newRIS(cfg),
		newRandSub(cfg, seed),
		newPCALOF1(cfg),
		newPCALOF2(cfg),
	}
}
