// Package experiments reproduces every table and figure of the paper's
// evaluation section (Sec. V). Each Fig* function regenerates one artifact
// as a plain-text table on the given writer; cmd/hicsbench exposes them as
// subcommands and the root bench_test.go wraps them in testing.B benches.
//
// The harness compares the same competitor set as the paper:
// full-space LOF, HiCS(+LOF), Enclus(+LOF), RIS(+LOF), RANDSUB(+LOF), and
// the two PCA variants, all sharing one LOF parameterization and the
// "best 100 subspaces" budget (Sec. V).
package experiments

import (
	"fmt"
	"strings"

	"hics/internal/core"
	"hics/internal/enclus"
	"hics/internal/neighbors"
	"hics/internal/randsub"
	"hics/internal/ranking"
	"hics/internal/registry"
	"hics/internal/ris"
	"hics/internal/surfing"
)

// displayName strips the scorer suffix from pipeline names so tables use
// the paper's method labels (all competitors share the LOF scorer anyway).
func displayName(r ranking.Ranker) string {
	return strings.TrimSuffix(r.Name(), "+LOF")
}

// Config controls experiment sizing. The zero value reproduces the paper's
// scale; Medium keeps the full sweep ranges at reduced dataset sizes (the
// recommended mode on a laptop core — the cubic RIS competitor dominates
// the full-scale runtime); Quick shrinks both sizes and sweeps for smoke
// tests.
type Config struct {
	// Quick selects strongly reduced dataset sizes and sweep grids.
	Quick bool
	// Medium keeps the paper's sweep grids at reduced dataset sizes.
	// Quick wins if both are set.
	Medium bool
	// Seed drives dataset generation and all Monte Carlo loops.
	Seed uint64
	// MinPts is the shared LOF neighborhood size (0 = 10, as everywhere).
	MinPts int
	// Searchers restricts the subspace-method competitor set to these
	// registry names; nil selects the paper's set (hics, enclus, ris,
	// randsub). The full-space LOF baseline and the PCA variants of the
	// quality figures are not affected.
	Searchers []string
}

// sizing collects every experiment's workload parameters for one mode.
type sizing struct {
	dimsN    int   // DB size of the Fig4/5 dimensionality sweep
	dims     []int // dimensionalities of the Fig4/5 sweep
	dimsReps int   // repetitions per dimensionality

	fig6Sizes []int // DB sizes of the Fig6 runtime sweep (D=25)

	fig7Ms      []int     // Monte Carlo iteration sweep
	fig8Alphas  []float64 // slice size sweep
	fig9Cutoffs []int     // candidate cutoff sweep
	paramN      int       // DB size of the parameter studies
	paramD      int       // dimensionality of the parameter studies
	paramReps   int       // repetitions of the parameter studies

	realCap int // max N of the simulated UCI datasets (0 = original size)
}

func (c Config) sizing() sizing {
	switch {
	case c.Quick:
		return sizing{
			dimsN: 300, dims: []int{10, 20, 30}, dimsReps: 2,
			fig6Sizes:   []int{300, 600, 1200},
			fig7Ms:      []int{10, 50, 100},
			fig8Alphas:  []float64{0.05, 0.1, 0.3},
			fig9Cutoffs: []int{50, 200, 400, 800},
			paramN:      300, paramD: 15, paramReps: 2,
			realCap: 800,
		}
	case c.Medium:
		return sizing{
			dimsN: 500, dims: []int{10, 20, 30, 40, 50, 75, 100}, dimsReps: 2,
			fig6Sizes:   []int{500, 1000, 2000, 4000},
			fig7Ms:      []int{10, 25, 50, 100, 200, 500},
			fig8Alphas:  []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5},
			fig9Cutoffs: []int{50, 100, 200, 400, 500, 800, 1600, 5000},
			paramN:      500, paramD: 20, paramReps: 3,
			realCap: 1500,
		}
	default:
		return sizing{
			dimsN: 1000, dims: []int{10, 20, 30, 40, 50, 75, 100}, dimsReps: 3,
			fig6Sizes:   []int{1000, 2500, 5000, 10000},
			fig7Ms:      []int{10, 25, 50, 100, 200, 500},
			fig8Alphas:  []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5},
			fig9Cutoffs: []int{50, 100, 200, 400, 500, 800, 1600, 5000},
			paramN:      1000, paramD: 25, paramReps: 3,
			realCap: 0,
		}
	}
}

func (c Config) minPts() int {
	if c.MinPts > 0 {
		return c.MinPts
	}
	return 10
}

// hicsParams returns the paper-default HiCS parameters with the given seed.
func hicsParams(seed uint64) core.Params {
	return core.Params{M: core.DefaultM, Alpha: core.DefaultAlpha, Cutoff: core.DefaultCutoff, TopK: core.DefaultTopK, Seed: seed}
}

// searcherOptions carries the paper's per-method search parameters: every
// competitor gets the "best 100 subspaces" budget of Sec. V.
func (c Config) searcherOptions(seed uint64) registry.SearcherOptions {
	return registry.SearcherOptions{
		HiCS:    hicsParams(seed),
		Enclus:  enclus.Params{TopK: 100},
		RIS:     ris.Params{TopK: 100},
		RandSub: randsub.Params{Count: 100, Seed: seed},
		Surfing: surfing.Params{K: c.minPts(), TopK: 100},
	}
}

// scorerOptions carries the paper's scorer parameterization, pinned to the
// brute-force neighbor index: the runtime figures (Fig. 5, Fig. 6, Fig. 9)
// are calibrated against the quadratic ranking step, and letting the
// automatic index selection swap in the k-d tree would silently change the
// measured curves (scores are bit-identical either way).
func (c Config) scorerOptions() registry.ScorerOptions {
	return registry.ScorerOptions{
		LOF:    registry.LOFOptions{MinPts: c.minPts(), Index: neighbors.KindBrute},
		KNN:    registry.KNNOptions{K: c.minPts(), Index: neighbors.KindBrute},
		ORCA:   registry.ORCAOptions{K: c.minPts(), TopN: 50, Seed: c.Seed, Index: neighbors.KindBrute},
		OUTRES: registry.OUTRESOptions{},
	}
}

// pipeline resolves one registry (searcher, scorer) name pair with the
// shared evaluation options. Method names reaching this point were either
// written as literals here or validated at the cmd/hicsbench boundary, so
// a resolution failure is a programming error.
func (c Config) pipeline(search, scorer string, seed uint64) ranking.Pipeline {
	pipe, err := registry.NewPipeline(search, scorer, registry.PipelineOptions{
		Searchers: c.searcherOptions(seed),
		Scorers:   c.scorerOptions(),
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return pipe
}

// scorer resolves one registry scorer name with the shared evaluation
// options, for the pipelines assembled outside the two-step registry
// matrix (PCA).
func (c Config) scorer(name string) ranking.Scorer {
	sc, err := registry.NewScorer(name, c.scorerOptions())
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return sc
}

// hicsVariant builds a HiCS+LOF pipeline with custom search parameters,
// for the parameter sweeps (Fig. 7–9) and statistical-test ablations.
func (c Config) hicsVariant(p core.Params) ranking.Pipeline {
	so := c.searcherOptions(p.Seed)
	so.HiCS = p
	pipe, err := registry.NewPipeline("hics", "lof", registry.PipelineOptions{
		Searchers: so,
		Scorers:   c.scorerOptions(),
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return pipe
}

// newLOF builds the full-space LOF baseline.
func newLOF(cfg Config) ranking.Pipeline { return cfg.pipeline("fullspace", "lof", cfg.Seed) }

// newPCALOF1 reduces to 50% of the attributes before full-space LOF. PCA
// transforms objects instead of selecting attribute subsets, so it stays
// outside the searcher registry (the paper's argument for why it is not a
// subspace search method).
func newPCALOF1(cfg Config) ranking.PCAPipeline {
	return ranking.PCAPipeline{
		Components: func(d int) int { return (d + 1) / 2 },
		Scorer:     cfg.scorer("lof"),
		Label:      "PCALOF1",
	}
}

// newPCALOF2 reduces to a constant 10 principal components.
func newPCALOF2(cfg Config) ranking.PCAPipeline {
	return ranking.PCAPipeline{
		Components: func(d int) int { return 10 },
		Scorer:     cfg.scorer("lof"),
		Label:      "PCALOF2",
	}
}

// cacheKey is the comparable identity of a Config for memoization; the
// Searchers slice is flattened.
type cacheKey struct {
	quick, medium bool
	seed          uint64
	minPts        int
	searchers     string
}

func (c Config) key() cacheKey {
	return cacheKey{c.Quick, c.Medium, c.Seed, c.MinPts, strings.Join(c.searcherSet(), ",")}
}

// searcherSet resolves the Config's subspace-method selection.
func (c Config) searcherSet() []string {
	if len(c.Searchers) > 0 {
		return c.Searchers
	}
	return []string{"hics", "enclus", "ris", "randsub"}
}

// subspaceCompetitors returns the competitor set of the runtime figures
// (Fig. 5/6): the methods based on subspace rankings, all sharing the LOF
// ranking step.
func subspaceCompetitors(cfg Config, seed uint64) []ranking.Ranker {
	var out []ranking.Ranker
	for _, name := range cfg.searcherSet() {
		out = append(out, cfg.pipeline(name, "lof", seed))
	}
	return out
}

// allCompetitors returns the full Fig. 4 competitor set. The full-space
// LOF baseline is always present, so a "fullspace" entry in the searcher
// selection is dropped here — it would be the identical pipeline twice.
func allCompetitors(cfg Config, seed uint64) []ranking.Ranker {
	out := []ranking.Ranker{newLOF(cfg)}
	sub := cfg
	sub.Searchers = nil
	for _, name := range cfg.searcherSet() {
		if name != "fullspace" {
			sub.Searchers = append(sub.Searchers, name)
		}
	}
	if len(sub.Searchers) > 0 {
		out = append(out, subspaceCompetitors(sub, seed)...)
	}
	return append(out, newPCALOF1(cfg), newPCALOF2(cfg))
}
