package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"hics/internal/core"
	"hics/internal/dataset"
	"hics/internal/eval"
	"hics/internal/ranking"
	"hics/internal/synth"
)

// synthBench generates the paper's synthetic benchmark for the given
// dimensionality and size: 2-5-dimensional correlated groups with 5
// non-trivial outliers each.
func synthBench(n, d int, seed uint64) (*dataset.Labeled, error) {
	b, err := synth.Generate(synth.Config{
		N: n, D: d,
		MinSubspaceDim: 2, MaxSubspaceDim: 5,
		OutliersPerSubspace: 5,
		Seed:                seed,
	})
	if err != nil {
		return nil, err
	}
	return b.Data, nil
}

// rankAUC runs a ranker and returns its AUC and wall-clock runtime
// (subspace search plus outlier ranking, as in the paper's runtime plots).
// A cancelled ctx aborts the run mid-ranking with ctx.Err().
func rankAUC(ctx context.Context, r ranking.Ranker, l *dataset.Labeled) (auc float64, elapsed time.Duration, err error) {
	start := time.Now()
	res, err := r.RankContext(ctx, l.Data)
	elapsed = time.Since(start)
	if err != nil {
		return 0, elapsed, err
	}
	auc, err = eval.AUC(res.Scores, l.Outlier)
	return auc, elapsed, err
}

// Fig4 reproduces "Quality (AUC) of outlier rankings w.r.t. increasing
// dimensionality": mean AUC ± stddev over several random datasets per
// dimensionality, for all seven competitors. It also records runtimes,
// which Fig5 prints — the paper runs both figures off the same sweep.
func Fig4(ctx context.Context, w io.Writer, cfg Config) error {
	res, err := runDimsSweep(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Fig 4 — AUC [%] (mean ± std over repetitions) vs dimensionality D")
	fmt.Fprintf(w, "%-10s", "method")
	for _, d := range res.dims {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("D=%d", d))
	}
	fmt.Fprintln(w)
	for _, m := range res.methods {
		fmt.Fprintf(w, "%-10s", m)
		for di := range res.dims {
			mean, std := eval.MeanStd(res.auc[m][di])
			fmt.Fprintf(w, " %6.1f ±%4.1f", 100*mean, 100*std)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig5 reproduces "Runtime w.r.t. dimensionality D, with fixed DB-size":
// total processing time (subspace search + outlier ranking) of the
// subspace-ranking competitors over the same sweep as Fig4.
func Fig5(ctx context.Context, w io.Writer, cfg Config) error {
	res, err := runDimsSweep(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Fig 5 — total runtime [s] vs dimensionality D (N=%d)\n", res.n)
	fmt.Fprintf(w, "%-10s", "method")
	for _, d := range res.dims {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("D=%d", d))
	}
	fmt.Fprintln(w)
	for _, m := range res.methods {
		if m == "LOF" || m == "PCALOF1" || m == "PCALOF2" {
			continue // the paper's runtime plot shows subspace methods only
		}
		fmt.Fprintf(w, "%-10s", m)
		for di := range res.dims {
			mean, _ := eval.MeanStd(res.seconds[m][di])
			fmt.Fprintf(w, " %9.2f", mean)
		}
		fmt.Fprintln(w)
	}
	return nil
}

type dimsSweepResult struct {
	n       int
	dims    []int
	methods []string
	auc     map[string][]([]float64) // method -> per-dim -> per-rep AUC
	seconds map[string][]([]float64)
}

// dimsSweepCache memoizes the shared Fig4/Fig5 sweep per config so running
// both subcommands in one process does not double the work.
var dimsSweepCache = map[cacheKey]*dimsSweepResult{}

func runDimsSweep(ctx context.Context, cfg Config) (*dimsSweepResult, error) {
	if r, ok := dimsSweepCache[cfg.key()]; ok {
		return r, nil
	}
	sz := cfg.sizing()
	n, dims, reps := sz.dimsN, sz.dims, sz.dimsReps
	res := &dimsSweepResult{
		n:       n,
		dims:    dims,
		auc:     map[string][]([]float64){},
		seconds: map[string][]([]float64){},
	}
	for di, d := range dims {
		for rep := 0; rep < reps; rep++ {
			seed := cfg.Seed + uint64(1000*di+rep)
			l, err := synthBench(n, d, seed)
			if err != nil {
				return nil, err
			}
			for _, r := range allCompetitors(cfg, seed) {
				name := displayName(r)
				if rep == 0 && di == 0 {
					res.methods = append(res.methods, name)
				}
				if res.auc[name] == nil {
					res.auc[name] = make([][]float64, len(dims))
					res.seconds[name] = make([][]float64, len(dims))
				}
				auc, elapsed, err := rankAUC(ctx, r, l)
				if err != nil {
					return nil, fmt.Errorf("%s at D=%d: %w", name, d, err)
				}
				res.auc[name][di] = append(res.auc[name][di], auc)
				res.seconds[name][di] = append(res.seconds[name][di], elapsed.Seconds())
			}
		}
	}
	dimsSweepCache[cfg.key()] = res
	return res, nil
}

// Fig6 reproduces "Runtime w.r.t. the DB-size, with fixed dimensionality
// 25" for the subspace-ranking competitors.
func Fig6(ctx context.Context, w io.Writer, cfg Config) error {
	d := 25
	sizes := cfg.sizing().fig6Sizes
	fmt.Fprintf(w, "# Fig 6 — total runtime [s] vs DB size N (D=%d)\n", d)
	fmt.Fprintf(w, "%-10s", "method")
	for _, n := range sizes {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("N=%d", n))
	}
	fmt.Fprintln(w)

	// Generate all datasets first so every method sees identical data.
	data := make([]*dataset.Labeled, len(sizes))
	for i, n := range sizes {
		l, err := synthBench(n, d, cfg.Seed+uint64(i))
		if err != nil {
			return err
		}
		data[i] = l
	}
	for _, r := range subspaceCompetitors(cfg, cfg.Seed) {
		fmt.Fprintf(w, "%-10s", displayName(r))
		for i := range sizes {
			_, elapsed, err := rankAUC(ctx, r, data[i])
			if err != nil {
				return fmt.Errorf("%s at N=%d: %w", r.Name(), sizes[i], err)
			}
			fmt.Fprintf(w, " %10.2f", elapsed.Seconds())
		}
		fmt.Fprintln(w)
	}
	return nil
}

// paramSweepData builds the fixed benchmark of the parameter studies
// (Fig. 7/8/9): moderate dimensionality so every configuration finishes
// quickly, several repetitions for stable means.
func paramSweepData(cfg Config, reps int) ([]*dataset.Labeled, error) {
	sz := cfg.sizing()
	n, d := sz.paramN, sz.paramD
	out := make([]*dataset.Labeled, reps)
	for i := range out {
		l, err := synthBench(n, d, cfg.Seed+uint64(i)*7)
		if err != nil {
			return nil, err
		}
		out[i] = l
	}
	return out, nil
}

// Fig7 reproduces "Dependence on the number of statistical tests (M)" for
// both statistical instantiations HiCS_WT and HiCS_KS.
func Fig7(ctx context.Context, w io.Writer, cfg Config) error {
	sz := cfg.sizing()
	ms, reps := sz.fig7Ms, sz.paramReps
	data, err := paramSweepData(cfg, reps)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Fig 7 — AUC [%] vs number of statistical tests M")
	fmt.Fprintf(w, "%-10s", "variant")
	for _, m := range ms {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("M=%d", m))
	}
	fmt.Fprintln(w)
	for _, tt := range []core.Test{core.WelchT, core.KolmogorovSmirnov} {
		name := "HiCS_WT"
		if tt == core.KolmogorovSmirnov {
			name = "HiCS_KS"
		}
		fmt.Fprintf(w, "%-10s", name)
		for _, m := range ms {
			var aucs []float64
			for _, l := range data {
				p := hicsParams(cfg.Seed)
				p.M = m
				p.Test = tt
				auc, _, err := rankAUC(ctx, cfg.hicsVariant(p), l)
				if err != nil {
					return err
				}
				aucs = append(aucs, auc)
			}
			mean, _ := eval.MeanStd(aucs)
			fmt.Fprintf(w, " %8.1f", 100*mean)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig8 reproduces "Dependence on the size of the test statistic (α)".
func Fig8(ctx context.Context, w io.Writer, cfg Config) error {
	sz := cfg.sizing()
	alphas, reps := sz.fig8Alphas, sz.paramReps
	data, err := paramSweepData(cfg, reps)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Fig 8 — AUC [%] vs test statistic size alpha")
	fmt.Fprintf(w, "%-10s", "variant")
	for _, a := range alphas {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("a=%.2f", a))
	}
	fmt.Fprintln(w)
	for _, tt := range []core.Test{core.WelchT, core.KolmogorovSmirnov} {
		name := "HiCS_WT"
		if tt == core.KolmogorovSmirnov {
			name = "HiCS_KS"
		}
		fmt.Fprintf(w, "%-10s", name)
		for _, a := range alphas {
			var aucs []float64
			for _, l := range data {
				p := hicsParams(cfg.Seed)
				p.Alpha = a
				p.Test = tt
				auc, _, err := rankAUC(ctx, cfg.hicsVariant(p), l)
				if err != nil {
					return err
				}
				aucs = append(aucs, auc)
			}
			mean, _ := eval.MeanStd(aucs)
			fmt.Fprintf(w, " %8.1f", 100*mean)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig9 reproduces "Quality and Runtime w.r.t. candidate cutoff parameter":
// mean AUC and mean runtime over several synthetic datasets for a sweep of
// the cutoff.
func Fig9(ctx context.Context, w io.Writer, cfg Config) error {
	sz := cfg.sizing()
	cutoffs, reps := sz.fig9Cutoffs, sz.paramReps
	data, err := paramSweepData(cfg, reps)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Fig 9 — AUC [%] and runtime [s] vs candidate cutoff")
	fmt.Fprintf(w, "%-10s %10s %12s\n", "cutoff", "AUC", "runtime")
	for _, cut := range cutoffs {
		var aucs, secs []float64
		for _, l := range data {
			p := hicsParams(cfg.Seed)
			p.Cutoff = cut
			auc, elapsed, err := rankAUC(ctx, cfg.hicsVariant(p), l)
			if err != nil {
				return err
			}
			aucs = append(aucs, auc)
			secs = append(secs, elapsed.Seconds())
		}
		aucMean, _ := eval.MeanStd(aucs)
		secMean, _ := eval.MeanStd(secs)
		fmt.Fprintf(w, "%-10d %9.1f%% %11.2fs\n", cut, 100*aucMean, secMean)
	}
	return nil
}
