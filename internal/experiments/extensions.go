package experiments

import (
	"context"
	"fmt"
	"io"

	"hics/internal/core"
	"hics/internal/eval"
	"hics/internal/ranking"
)

// ExtTests evaluates all four statistical instantiations of the contrast
// measure: the paper's HiCS_WT and HiCS_KS plus the Mann–Whitney and
// Cramér–von Mises extensions this library adds.
func ExtTests(ctx context.Context, w io.Writer, cfg Config) error {
	reps := cfg.sizing().paramReps
	data, err := paramSweepData(cfg, reps)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Extension — all statistical instantiations of the contrast measure")
	fmt.Fprintf(w, "%-10s %10s %12s\n", "variant", "AUC", "runtime")
	for _, tt := range []core.Test{core.WelchT, core.KolmogorovSmirnov, core.MannWhitney, core.CramerVonMises} {
		p := hicsParams(cfg.Seed)
		p.Test = tt
		pipe := cfg.hicsVariant(p)
		var aucs, secs []float64
		for _, l := range data {
			auc, elapsed, err := rankAUC(ctx, pipe, l)
			if err != nil {
				return err
			}
			aucs = append(aucs, auc)
			secs = append(secs, elapsed.Seconds())
		}
		aucMean, _ := eval.MeanStd(aucs)
		secMean, _ := eval.MeanStd(secs)
		fmt.Fprintf(w, "%-10s %9.1f%% %11.2fs\n", pipe.Searcher.Name(), 100*aucMean, secMean)
	}
	return nil
}

// ExtScorers evaluates the ranking-step instantiations on top of the HiCS
// subspace search: LOF (the paper's choice), the kNN-distance score, and
// the two future-work scorers ORCA and OUTRES. OUTRES additionally runs
// with its native product aggregation.
func ExtScorers(ctx context.Context, w io.Writer, cfg Config) error {
	reps := cfg.sizing().paramReps
	data, err := paramSweepData(cfg, reps)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Extension — scorer instantiations of the ranking step (HiCS search)")
	fmt.Fprintf(w, "%-16s %10s %12s\n", "scorer", "AUC", "runtime")
	type entry struct {
		label  string
		scorer string
		agg    ranking.Aggregation
	}
	entries := []entry{
		{"LOF", "lof", ranking.Average},
		{"kNN-dist", "knn", ranking.Average},
		{"ORCA", "orca", ranking.Average},
		{"OUTRES", "outres", ranking.Average},
		{"OUTRES-prod", "outres", ranking.Product},
	}
	for _, e := range entries {
		pipe := cfg.pipeline("hics", e.scorer, cfg.Seed)
		pipe.Agg = e.agg
		var aucs, secs []float64
		for _, l := range data {
			auc, elapsed, err := rankAUC(ctx, pipe, l)
			if err != nil {
				return err
			}
			aucs = append(aucs, auc)
			secs = append(secs, elapsed.Seconds())
		}
		aucMean, _ := eval.MeanStd(aucs)
		secMean, _ := eval.MeanStd(secs)
		fmt.Fprintf(w, "%-16s %9.1f%% %11.2fs\n", e.label, 100*aucMean, secMean)
	}
	return nil
}

// ExtSearchers compares HiCS against the full set of subspace search
// techniques surveyed in the paper's related work, including SURFING,
// which the paper cites but does not evaluate.
func ExtSearchers(ctx context.Context, w io.Writer, cfg Config) error {
	reps := cfg.sizing().paramReps
	data, err := paramSweepData(cfg, reps)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Extension — subspace searchers incl. SURFING (LOF ranking)")
	fmt.Fprintf(w, "%-10s %10s %12s\n", "searcher", "AUC", "runtime")
	for _, name := range []string{"hics", "enclus", "ris", "surfing", "randsub"} {
		pipe := cfg.pipeline(name, "lof", cfg.Seed)
		var aucs, secs []float64
		for _, l := range data {
			auc, elapsed, err := rankAUC(ctx, pipe, l)
			if err != nil {
				return err
			}
			aucs = append(aucs, auc)
			secs = append(secs, elapsed.Seconds())
		}
		aucMean, _ := eval.MeanStd(aucs)
		secMean, _ := eval.MeanStd(secs)
		fmt.Fprintf(w, "%-10s %9.1f%% %11.2fs\n", pipe.Searcher.Name(), 100*aucMean, secMean)
	}
	return nil
}

// ExtPrecision reports precision-oriented metrics (average precision and
// precision@|outliers|) alongside AUC for the main competitors — the view
// Fig. 10's "high recall with best precision" discussion calls for.
func ExtPrecision(ctx context.Context, w io.Writer, cfg Config) error {
	reps := cfg.sizing().paramReps
	data, err := paramSweepData(cfg, reps)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Extension — precision metrics (average precision, P@n)")
	fmt.Fprintf(w, "%-10s %10s %10s %10s\n", "method", "AUC", "AP", "P@n")
	for _, r := range []ranking.Ranker{newLOF(cfg), cfg.pipeline("hics", "lof", cfg.Seed), cfg.pipeline("enclus", "lof", cfg.Seed), cfg.pipeline("randsub", "lof", cfg.Seed)} {
		var aucs, aps, patns []float64
		for _, l := range data {
			res, err := r.RankContext(ctx, l.Data)
			if err != nil {
				return err
			}
			auc, err := eval.AUC(res.Scores, l.Outlier)
			if err != nil {
				return err
			}
			ap, err := eval.AveragePrecision(res.Scores, l.Outlier)
			if err != nil {
				return err
			}
			patn, err := eval.PrecisionAtN(res.Scores, l.Outlier, l.NumOutliers())
			if err != nil {
				return err
			}
			aucs = append(aucs, auc)
			aps = append(aps, ap)
			patns = append(patns, patn)
		}
		aucMean, _ := eval.MeanStd(aucs)
		apMean, _ := eval.MeanStd(aps)
		pMean, _ := eval.MeanStd(patns)
		fmt.Fprintf(w, "%-10s %9.1f%% %9.1f%% %9.1f%%\n",
			displayName(r), 100*aucMean, 100*apMean, 100*pMean)
	}
	return nil
}
