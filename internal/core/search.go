package core

import (
	"context"
	"fmt"

	"hics/internal/dataset"
	"hics/internal/parallel"
	"hics/internal/rng"
	"hics/internal/subspace"
	"hics/internal/trace"
)

// SearchResult carries the outcome of a HiCS subspace search.
type SearchResult struct {
	// Subspaces is the final ranking: redundancy-pruned, sorted by
	// descending contrast, truncated to Params.TopK.
	Subspaces []subspace.Scored
	// Levels records the retained candidates per Apriori level (index 0 =
	// two-dimensional), before pruning. Useful for diagnostics and tests.
	Levels [][]subspace.Scored
	// Evaluated counts contrast computations performed.
	Evaluated int
	// MCIterations counts the Monte Carlo iterations actually executed.
	// With the flat schedule it equals Evaluated·M; with AdaptiveM it is
	// smaller whenever the racing scheduler pruned candidates early.
	MCIterations int
	// PrunedEarly counts the candidates the adaptive scheduler stopped
	// before their full M iterations (always 0 with the flat schedule).
	PrunedEarly int
}

// Search runs the full HiCS subspace framework (Sec. IV-B) on ds:
//
//  1. score every 2-dimensional subspace,
//  2. keep the top Cutoff candidates of the current level,
//  3. Apriori-join them into (d+1)-dimensional candidates and repeat until
//     the join yields nothing (or MaxDim is reached),
//  4. pool the retained candidates of all levels, remove each subspace
//     dominated by a higher-contrast superset one dimension larger, sort by
//     contrast and cut to TopK.
//
// Contrast evaluations are spread over Params.Workers goroutines; results
// are nevertheless deterministic because every subspace draws from a
// stream keyed by (Seed, subspace).
func Search(ds *dataset.Dataset, p Params) (*SearchResult, error) {
	return SearchContext(context.Background(), ds, p)
}

// SearchContext is Search with cooperative cancellation: the Monte Carlo
// workers check ctx between iterations and the level loop checks it
// between Apriori levels, so a cancelled context surfaces ctx.Err()
// within one Monte Carlo chunk of work per worker. Cancellation checks
// never touch the per-subspace random streams, so an uncancelled run is
// bit-for-bit identical to Search.
func SearchContext(ctx context.Context, ds *dataset.Dataset, p Params) (*SearchResult, error) {
	p = p.withDefaults()
	if ds.D() < 2 {
		return nil, fmt.Errorf("core: search needs at least 2 attributes, have %d", ds.D())
	}
	ds.EnsureIndexes()
	eval := NewEvaluator(ds, p)
	base := rng.New(p.Seed)

	// The search span covers the whole Apriori loop; each level's Monte
	// Carlo contrast pass gets a child span carrying its candidate and
	// pruning counts. Both are free (nil spans) outside a traced
	// request, and never consume randomness — the determinism contract
	// (ctx checks do not perturb the RNG stream) extends to tracing.
	ctx, span := trace.StartSpan(ctx, "search.subspaces")
	defer span.End()

	result := &SearchResult{}
	var pool []subspace.Scored

	candidates := subspace.AllPairs(ds.D())
	for len(candidates) > 0 {
		lctx, lspan := trace.StartSpan(ctx, "search.contrast_level")
		lspan.SetAttr("dim", candidates[0].Dim())
		lspan.SetAttr("candidates", len(candidates))
		var (
			scored []subspace.Scored
			err    error
		)
		if p.AdaptiveM {
			var spent, nPruned int
			scored, spent, nPruned, err = scoreAllAdaptive(lctx, eval, base, candidates, p)
			if err == nil {
				result.MCIterations += spent
				result.PrunedEarly += nPruned
				lspan.SetAttr("mc_iterations", spent)
				lspan.SetAttr("pruned_early", nPruned)
			}
		} else {
			scored, err = scoreAll(lctx, eval, base, candidates, p.Workers)
			if err == nil {
				result.MCIterations += len(scored) * p.M
				lspan.SetAttr("mc_iterations", len(scored)*p.M)
			}
		}
		if err != nil {
			lspan.SetError(err)
			lspan.End()
			span.SetError(err)
			return nil, err
		}
		lspan.End()
		result.Evaluated += len(scored)
		mCandidates.Add(int64(len(scored)))
		mMCBudget.Add(int64(len(scored) * p.M))

		retained := subspace.TopK(scored, p.Cutoff)
		result.Levels = append(result.Levels, retained)
		pool = append(pool, retained...)

		dim := retained[0].S.Dim()
		if p.MaxDim > 0 && dim >= p.MaxDim {
			break
		}
		parents := make([]subspace.Subspace, len(retained))
		for i, sc := range retained {
			parents[i] = sc.S
		}
		candidates = subspace.GenerateCandidates(parents)
	}

	if !p.DisablePruning {
		pool = subspace.PruneRedundant(pool)
	}
	result.Subspaces = subspace.TopK(pool, p.TopK)
	mMCIterations.Add(int64(result.MCIterations))
	mCandidatesPruned.Add(int64(result.PrunedEarly))
	span.SetAttr("evaluated", result.Evaluated)
	span.SetAttr("mc_iterations", result.MCIterations)
	span.SetAttr("pruned_early", result.PrunedEarly)
	span.SetAttr("levels", len(result.Levels))
	span.SetAttr("subspaces", len(result.Subspaces))
	return result, nil
}

// scoreAll evaluates the contrast of every candidate on the shared
// parallel fan-out, one candidate per work item (contrast costs vary
// widely with subspace dimensionality, so fine-grained claiming keeps the
// workers balanced). Each worker lazily allocates one Scratch and reuses
// it across its candidates.
func scoreAll(ctx context.Context, eval *Evaluator, base *rng.RNG, candidates []subspace.Subspace, workers int) ([]subspace.Scored, error) {
	scored := make([]subspace.Scored, len(candidates))
	workers = parallel.WorkerCount(workers, len(candidates))
	scratches := make([]*Scratch, workers)
	err := parallel.ForEach(ctx, len(candidates), workers, 1, func(w, i int) error {
		sc := scratches[w]
		if sc == nil {
			sc = eval.NewScratch()
			scratches[w] = sc
		}
		s := candidates[i]
		c, err := eval.ContrastContext(ctx, s, base.Derive(hashSubspace(s)), sc)
		if err != nil {
			return err
		}
		scored[i] = subspace.Scored{S: s, Score: c}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return scored, nil
}

// Searcher adapts Search to the ranking pipeline's SubspaceSearcher
// interface: a reusable configuration whose Search method returns the
// ranked subspace list.
type Searcher struct {
	Params Params
}

// Search implements the two-step pipeline's subspace search step.
func (h *Searcher) Search(ctx context.Context, ds *dataset.Dataset) ([]subspace.Scored, error) {
	res, err := SearchContext(ctx, ds, h.Params)
	if err != nil {
		return nil, err
	}
	return res.Subspaces, nil
}

// Name identifies the method in experiment reports: the paper's "HiCS"
// for the default Welch instantiation, suffixed variants otherwise.
func (h *Searcher) Name() string {
	switch h.Params.Test {
	case KolmogorovSmirnov:
		return "HiCS_KS"
	case MannWhitney:
		return "HiCS_MW"
	case CramerVonMises:
		return "HiCS_CVM"
	default:
		return "HiCS"
	}
}
