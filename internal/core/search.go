package core

import (
	"fmt"
	"runtime"
	"sync"

	"hics/internal/dataset"
	"hics/internal/rng"
	"hics/internal/subspace"
)

// SearchResult carries the outcome of a HiCS subspace search.
type SearchResult struct {
	// Subspaces is the final ranking: redundancy-pruned, sorted by
	// descending contrast, truncated to Params.TopK.
	Subspaces []subspace.Scored
	// Levels records the retained candidates per Apriori level (index 0 =
	// two-dimensional), before pruning. Useful for diagnostics and tests.
	Levels [][]subspace.Scored
	// Evaluated counts contrast computations performed.
	Evaluated int
}

// Search runs the full HiCS subspace framework (Sec. IV-B) on ds:
//
//  1. score every 2-dimensional subspace,
//  2. keep the top Cutoff candidates of the current level,
//  3. Apriori-join them into (d+1)-dimensional candidates and repeat until
//     the join yields nothing (or MaxDim is reached),
//  4. pool the retained candidates of all levels, remove each subspace
//     dominated by a higher-contrast superset one dimension larger, sort by
//     contrast and cut to TopK.
//
// Contrast evaluations are spread over Params.Workers goroutines; results
// are nevertheless deterministic because every subspace draws from a
// stream keyed by (Seed, subspace).
func Search(ds *dataset.Dataset, p Params) (*SearchResult, error) {
	p = p.withDefaults()
	if ds.D() < 2 {
		return nil, fmt.Errorf("core: search needs at least 2 attributes, have %d", ds.D())
	}
	ds.EnsureIndexes()
	eval := NewEvaluator(ds, p)
	base := rng.New(p.Seed)

	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	result := &SearchResult{}
	var pool []subspace.Scored

	candidates := subspace.AllPairs(ds.D())
	for len(candidates) > 0 {
		scored := scoreAll(eval, base, candidates, workers)
		result.Evaluated += len(scored)

		retained := subspace.TopK(scored, p.Cutoff)
		result.Levels = append(result.Levels, retained)
		pool = append(pool, retained...)

		dim := retained[0].S.Dim()
		if p.MaxDim > 0 && dim >= p.MaxDim {
			break
		}
		parents := make([]subspace.Subspace, len(retained))
		for i, sc := range retained {
			parents[i] = sc.S
		}
		candidates = subspace.GenerateCandidates(parents)
	}

	if !p.DisablePruning {
		pool = subspace.PruneRedundant(pool)
	}
	result.Subspaces = subspace.TopK(pool, p.TopK)
	return result, nil
}

// scoreAll evaluates the contrast of every candidate, fanning the work out
// over the given number of goroutines.
func scoreAll(eval *Evaluator, base *rng.RNG, candidates []subspace.Subspace, workers int) []subspace.Scored {
	scored := make([]subspace.Scored, len(candidates))
	if workers > len(candidates) {
		workers = len(candidates)
	}
	if workers <= 1 {
		sc := eval.NewScratch()
		for i, s := range candidates {
			scored[i] = subspace.Scored{S: s, Score: eval.Contrast(s, base.Derive(hashSubspace(s)), sc)}
		}
		return scored
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := eval.NewScratch()
			for i := range next {
				s := candidates[i]
				scored[i] = subspace.Scored{S: s, Score: eval.Contrast(s, base.Derive(hashSubspace(s)), sc)}
			}
		}()
	}
	for i := range candidates {
		next <- i
	}
	close(next)
	wg.Wait()
	return scored
}

// Searcher adapts Search to the ranking pipeline's SubspaceSearcher
// interface: a reusable configuration whose Search method returns the
// ranked subspace list.
type Searcher struct {
	Params Params
}

// Search implements the two-step pipeline's subspace search step.
func (h *Searcher) Search(ds *dataset.Dataset) ([]subspace.Scored, error) {
	res, err := Search(ds, h.Params)
	if err != nil {
		return nil, err
	}
	return res.Subspaces, nil
}

// Name identifies the method in experiment reports: the paper's "HiCS"
// for the default Welch instantiation, suffixed variants otherwise.
func (h *Searcher) Name() string {
	switch h.Params.Test {
	case KolmogorovSmirnov:
		return "HiCS_KS"
	case MannWhitney:
		return "HiCS_MW"
	case CramerVonMises:
		return "HiCS_CVM"
	default:
		return "HiCS"
	}
}
