package core

import "hics/internal/metrics"

// Fit observability: how much Monte Carlo work the subspace search
// actually spends, and how much the flat-M loop would have spent. The
// counters are process-wide (every Fit/Rank/stream-refit search adds to
// them); compare hics_fit_mc_iterations_total against
// hics_fit_mc_budget_total to read the adaptive scheduler's savings on a
// live process.
var (
	mCandidates = metrics.Default.NewCounter("hics_fit_candidates_total",
		"Candidate subspaces whose contrast the subspace search estimated (all Apriori levels).")
	mCandidatesPruned = metrics.Default.NewCounter("hics_fit_candidates_pruned_total",
		"Candidates the adaptive racing scheduler stopped early, before their full M iterations.")
	mMCIterations = metrics.Default.NewCounter("hics_fit_mc_iterations_total",
		"Monte Carlo contrast iterations actually executed by the subspace search.")
	mMCBudget = metrics.Default.NewCounter("hics_fit_mc_budget_total",
		"Monte Carlo iterations a flat-M loop would have executed (candidates times M).")
	mContrastSampleRows = metrics.Default.NewCounter("hics_fit_contrast_sample_rows_total",
		"Rows drawn into bounded-subsample contrast estimates (MaxSampleRows per sampled candidate).")
)
