// Package core implements the paper's primary contribution: the HiCS
// subspace contrast measure (Sec. III) and the Apriori-style subspace
// search framework built on it (Sec. IV).
//
// The contrast of a subspace S is estimated with a Monte Carlo loop of M
// statistical tests. Each iteration draws a random "subspace slice": for
// all but one randomly chosen attribute of S, a contiguous block of the
// per-attribute sorted index of expected size N·α^{1/|S|} is selected, and
// the conjunction of the blocks forms the conditional sample. The
// deviation between the conditional distribution of the remaining
// attribute and its marginal distribution is measured with either Welch's
// t-test (HiCS_WT, deviation = 1−p) or the two-sample Kolmogorov–Smirnov
// statistic (HiCS_KS, deviation = D), and the contrast is the mean
// deviation over the M iterations (Definition 5).
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"hics/internal/dataset"
	"hics/internal/rng"
	"hics/internal/stats"
	"hics/internal/subspace"
)

// Test selects the statistical deviation function.
type Test int

const (
	// WelchT is HiCS_WT: deviation = 1 − p of Welch's unequal-variance
	// t-test between marginal and conditional sample. The paper's default.
	WelchT Test = iota
	// KolmogorovSmirnov is HiCS_KS: deviation = the two-sample KS statistic.
	KolmogorovSmirnov
	// MannWhitney is an extension beyond the paper's two instantiations:
	// deviation = 1 − p of the rank-based Mann–Whitney U test. Like KS it
	// is distribution-free; like Welch it targets location shifts.
	MannWhitney
	// CramerVonMises is a second extension: the normalized two-sample
	// Cramér–von Mises criterion, which integrates the squared ECDF gap
	// instead of taking its supremum (KS) and is therefore more sensitive
	// to distributed shape differences.
	CramerVonMises
)

func (t Test) String() string {
	switch t {
	case WelchT:
		return "welch"
	case KolmogorovSmirnov:
		return "ks"
	case MannWhitney:
		return "mw"
	case CramerVonMises:
		return "cvm"
	default:
		return fmt.Sprintf("Test(%d)", int(t))
	}
}

// ParseTest converts a test name ("welch"/"wt", "ks", "mw", "cvm") into a
// Test value.
func ParseTest(s string) (Test, error) {
	switch s {
	case "welch", "wt", "t":
		return WelchT, nil
	case "ks", "kolmogorov-smirnov":
		return KolmogorovSmirnov, nil
	case "mw", "mann-whitney", "u":
		return MannWhitney, nil
	case "cvm", "cramer-von-mises":
		return CramerVonMises, nil
	default:
		return 0, fmt.Errorf("core: unknown statistical test %q (want welch, ks, mw or cvm)", s)
	}
}

// Defaults from the paper's parameter study (Sec. V-A3).
const (
	DefaultM      = 50  // Monte Carlo iterations (Fig. 7)
	DefaultAlpha  = 0.1 // slice size ratio (Fig. 8)
	DefaultCutoff = 400 // candidate cutoff (Fig. 5/9)
	DefaultTopK   = 100 // subspaces handed to the outlier ranking (Sec. V)
)

// Params configures the HiCS contrast computation and subspace search.
// The zero value means "paper defaults" for every field.
type Params struct {
	// M is the number of Monte Carlo iterations per subspace.
	M int
	// Alpha is the expected fraction of the data in a conditional sample.
	Alpha float64
	// Cutoff bounds the number of candidates retained per Apriori level.
	Cutoff int
	// TopK bounds the final number of subspaces returned by Search.
	// Set to -1 to return all.
	TopK int
	// Test selects HiCS_WT (default) or HiCS_KS.
	Test Test
	// Seed makes the Monte Carlo loop reproducible. Derived streams are
	// keyed by subspace, so results are independent of evaluation order.
	Seed uint64
	// Workers bounds the number of concurrent contrast evaluations during
	// Search; 0 means one per available CPU.
	Workers int
	// MaxDim optionally caps the dimensionality of generated candidates;
	// 0 means unbounded (the Apriori loop stops by itself).
	MaxDim int
	// DisablePruning turns off the redundancy pruning post-processing
	// (used by the pruning ablation; the paper always prunes).
	DisablePruning bool
	// AdaptiveM enables the racing scheduler: contrast estimation runs in
	// rounds over the candidate set, and candidates whose confidence bound
	// is statistically decided against the level's retention cut stop
	// early instead of spending the full M. Candidates that survive to
	// retention always complete all M iterations, so their contrasts are
	// bit-for-bit the flat-M values; only pruned (discarded) candidates
	// carry partial estimates. Off (the default) is bit-for-bit identical
	// to the flat loop.
	AdaptiveM bool
	// MaxSampleRows bounds the number of rows a contrast estimate may
	// touch: when 0 < MaxSampleRows < N, each subspace is estimated on a
	// deterministic per-subspace subsample of MaxSampleRows objects
	// (seeded from the subspace's stream), so per-candidate cost stops
	// growing linearly in N. 0 (the default) estimates on all rows.
	MaxSampleRows int
}

func (p Params) withDefaults() Params {
	if p.M <= 0 {
		p.M = DefaultM
	}
	if p.Alpha <= 0 || p.Alpha >= 1 {
		p.Alpha = DefaultAlpha
	}
	if p.Cutoff <= 0 {
		p.Cutoff = DefaultCutoff
	}
	if p.TopK == 0 {
		p.TopK = DefaultTopK
	}
	return p
}

// Evaluator computes subspace contrasts for one dataset. It caches the
// per-attribute artifacts both deviation functions need: sorted value
// arrays (KS marginals) and marginal moments (Welch marginals).
// An Evaluator is safe for concurrent Contrast calls as long as each call
// uses its own *rng.RNG and scratch (see NewScratch).
type Evaluator struct {
	ds     *dataset.Dataset
	params Params

	sortedVals [][]float64 // per attribute, ascending
	margMean   []float64
	margVar    []float64
}

// NewEvaluator prepares contrast evaluation for ds.
func NewEvaluator(ds *dataset.Dataset, p Params) *Evaluator {
	p = p.withDefaults()
	d := ds.D()
	e := &Evaluator{
		ds:         ds,
		params:     p,
		sortedVals: make([][]float64, d),
		margMean:   make([]float64, d),
		margVar:    make([]float64, d),
	}
	for j := 0; j < d; j++ {
		idx := ds.SortedIndex(j)
		col := ds.Col(j)
		sv := make([]float64, len(idx))
		for i, id := range idx {
			sv[i] = col[id]
		}
		e.sortedVals[j] = sv
		e.margMean[j], e.margVar[j] = stats.MeanVar(col)
	}
	return e
}

// Scratch holds the per-goroutine buffers of the Monte Carlo loop.
type Scratch struct {
	perm  []int     // permutation of subspace attributes
	count []int32   // conjunction counter per object
	stamp []int32   // iteration stamp for lazy counter reset
	iter  int32     // current stamp value
	cond  []float64 // conditional sample values
}

// NewScratch allocates scratch buffers sized for the evaluator's dataset.
func (e *Evaluator) NewScratch() *Scratch {
	return &Scratch{
		count: make([]int32, e.ds.N()),
		stamp: make([]int32, e.ds.N()),
		cond:  make([]float64, 0, e.ds.N()),
	}
}

// Contrast computes the HiCS contrast of subspace s (Definition 5) using
// the provided random stream and scratch space. Subspaces must have at
// least two dimensions; one-dimensional input yields zero (no notion of
// correlation, Sec. IV-B).
func (e *Evaluator) Contrast(s subspace.Subspace, r *rng.RNG, sc *Scratch) float64 {
	v, _ := e.ContrastContext(context.Background(), s, r, sc)
	return v
}

// ContrastContext is Contrast with cooperative cancellation: the Monte
// Carlo loop checks ctx between iterations and returns ctx.Err() when it
// fires. The check never touches the random stream, so an uncancelled
// call is bit-for-bit identical to Contrast.
func (e *Evaluator) ContrastContext(ctx context.Context, s subspace.Subspace, r *rng.RNG, sc *Scratch) (float64, error) {
	if s.Dim() < 2 {
		return 0, ctx.Err()
	}
	run := e.newRun(s, r)
	if err := run.advance(ctx, e.params.M, sc); err != nil {
		return 0, err
	}
	return run.estimate(), nil
}

// sampleStream labels the sub-stream a subspace's row subsample is drawn
// from. Derive does not advance the parent, so the Monte Carlo stream of a
// subsampled run starts at the same state as a full-data run's.
const sampleStream = 0x5a3c9d17

// sampleIndex is the frozen per-candidate row subsample of a bounded
// contrast estimate: the sampled object ids plus, per subspace position,
// the sample re-sorted by that attribute's values (the sample's analog of
// dataset.SortedIndex, with the same ascending-id tie order).
type sampleIndex struct {
	ids    []int   // sampled object ids, ascending
	sorted [][]int // sorted[i]: ids ordered by the values of s[i]
}

// newSampleIndex draws m distinct row ids from [0, N) on the given stream
// and builds the per-attribute sorted views the slicing loop needs.
func (e *Evaluator) newSampleIndex(s subspace.Subspace, r *rng.RNG, m int) *sampleIndex {
	n := e.ds.N()
	// Floyd's sampling: m distinct ids in O(m) expected time, no N-sized
	// allocation.
	chosen := make(map[int]struct{}, m)
	ids := make([]int, 0, m)
	for i := n - m; i < n; i++ {
		j := r.Intn(i + 1)
		if _, dup := chosen[j]; dup {
			j = i
		}
		chosen[j] = struct{}{}
		ids = append(ids, j)
	}
	sort.Ints(ids)

	si := &sampleIndex{ids: ids, sorted: make([][]int, s.Dim())}
	for i, attr := range s {
		col := e.ds.Col(attr)
		so := append([]int(nil), ids...)
		// Ties break toward the lower id, matching dataset.SortedIndex.
		sort.Slice(so, func(a, b int) bool {
			if col[so[a]] != col[so[b]] {
				return col[so[a]] < col[so[b]]
			}
			return so[a] < so[b]
		})
		si.sorted[i] = so
	}
	return si
}

// run is the incremental state of one subspace's Monte Carlo contrast
// estimate. The flat path builds a run and advances it M iterations in one
// go; the adaptive scheduler advances runs in rounds and reads the partial
// estimate between rounds. The per-candidate stream and the accumulated
// sums live here; the N-sized slicing buffers stay in the shared Scratch,
// so holding many runs concurrently is cheap.
type run struct {
	e *Evaluator
	s subspace.Subspace
	r *rng.RNG

	rows      int          // effective row count (sample size, or N)
	blockSize int          // condition block size over rows
	sample    *sampleIndex // nil when estimating on the full data

	sum   float64 // accumulated deviations
	sumSq float64 // accumulated squared deviations (adaptive bounds)
	done  int     // iterations completed
}

// newRun prepares incremental contrast estimation for s on stream r. When
// Params.MaxSampleRows bounds the rows, the subsample is drawn from a
// sub-stream derived from r, so the Monte Carlo stream itself is
// unaffected and the sample is a pure function of (Seed, subspace).
func (e *Evaluator) newRun(s subspace.Subspace, r *rng.RNG) *run {
	d := s.Dim()
	p := e.params
	ru := &run{e: e, s: s, r: r, rows: e.ds.N()}
	if p.MaxSampleRows > 0 && ru.rows > p.MaxSampleRows && d >= 2 {
		ru.rows = p.MaxSampleRows
		ru.sample = e.newSampleIndex(s, r.Derive(sampleStream), ru.rows)
		mContrastSampleRows.Add(int64(ru.rows))
	}

	// α1 = |S|-th root of α: each of the |S|−1 conditions keeps an index
	// block of rows·α1 objects so that E[N'] = rows·α1^{|S|−1} ≥ rows·α
	// (Eq. 7; the paper sizes blocks with the |S|-th root, keeping N'
	// slightly above the target for the final test statistic).
	alpha1 := math.Pow(p.Alpha, 1/float64(d))
	ru.blockSize = int(math.Round(alpha1 * float64(ru.rows)))
	if ru.blockSize < 1 {
		ru.blockSize = 1
	}
	if ru.blockSize > ru.rows {
		ru.blockSize = ru.rows
	}
	return ru
}

// sortedIndex returns the slicing order of the run's rows for subspace
// position pos: the dataset's full sorted index, or the subsample's.
func (ru *run) sortedIndex(pos int) []int {
	if ru.sample != nil {
		return ru.sample.sorted[pos]
	}
	return ru.e.ds.SortedIndex(ru.s[pos])
}

// advance runs iters more Monte Carlo iterations, continuing the run's
// random stream exactly where the previous advance left it — advancing in
// increments is bit-for-bit identical to one uninterrupted loop. The
// context is checked between iterations without touching the stream.
func (ru *run) advance(ctx context.Context, iters int, sc *Scratch) error {
	d := ru.s.Dim()
	if d < 2 {
		// No notion of correlation (Sec. IV-B): every iteration
		// contributes zero deviation.
		ru.done += iters
		return ctx.Err()
	}
	e := ru.e
	if cap(sc.perm) < d {
		sc.perm = make([]int, d)
	}
	perm := sc.perm[:d]

	for iter := 0; iter < iters; iter++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		sc.iter++
		if sc.iter < 0 {
			// The int32 stamp wrapped around. Old stamp values would
			// collide with reused counter values and silently corrupt the
			// conjunction counts, so reset the lazy-clearing state.
			for i := range sc.stamp {
				sc.stamp[i] = 0
			}
			sc.iter = 1
		}
		ru.r.PermInto(perm)

		// Apply |S|−1 conditions; remember the first block to enumerate the
		// conjunction (the selected set is a subset of every block).
		var firstBlock []int
		need := int32(d - 1)
		for j := 0; j < d-1; j++ {
			idx := ru.sortedIndex(perm[j])
			start := ru.r.Intn(ru.rows - ru.blockSize + 1)
			block := idx[start : start+ru.blockSize]
			if j == 0 {
				firstBlock = block
			}
			for _, id := range block {
				if sc.stamp[id] != sc.iter {
					sc.stamp[id] = sc.iter
					sc.count[id] = 1
				} else {
					sc.count[id]++
				}
			}
		}

		// Conditional sample of the remaining attribute.
		lastAttr := ru.s[perm[d-1]]
		col := e.ds.Col(lastAttr)
		cond := sc.cond[:0]
		for _, id := range firstBlock {
			if sc.stamp[id] == sc.iter && sc.count[id] == need {
				cond = append(cond, col[id])
			}
		}
		sc.cond = cond

		dev := e.deviation(lastAttr, cond)
		ru.sum += dev
		ru.sumSq += dev * dev
		ru.done++
	}
	return nil
}

// estimate returns the running mean deviation — the contrast estimate
// after done iterations. A full run (done == M) reproduces the flat-M
// contrast bit for bit: the deviations accumulate in the same order and
// the division is the same.
func (ru *run) estimate() float64 {
	if ru.done == 0 {
		return 0
	}
	return ru.sum / float64(ru.done)
}

// variance returns the (biased) empirical variance of the deviations seen
// so far — the spread the adaptive scheduler's confidence radius is built
// on. Deviations live in [0,1], so the value is clamped to that range's
// maximal variance to absorb rounding.
func (ru *run) variance() float64 {
	if ru.done == 0 {
		return 0.25
	}
	m := ru.sum / float64(ru.done)
	v := ru.sumSq/float64(ru.done) - m*m
	if v < 0 {
		v = 0
	}
	if v > 0.25 {
		v = 0.25
	}
	return v
}

// deviation compares the conditional sample of attribute attr to its
// marginal distribution with the configured test. Conditional samples too
// small to test contribute zero deviation — the conservative choice, since
// no evidence of dependence was obtained.
func (e *Evaluator) deviation(attr int, cond []float64) float64 {
	switch e.params.Test {
	case KolmogorovSmirnov:
		if len(cond) == 0 {
			return 0
		}
		sort.Float64s(cond)
		return stats.KSStatSorted(e.sortedVals[attr], cond)
	case MannWhitney:
		if len(cond) < 2 {
			return 0
		}
		return stats.MannWhitneyDeviation(e.sortedVals[attr], cond)
	case CramerVonMises:
		if len(cond) == 0 {
			return 0
		}
		sort.Float64s(cond)
		return stats.CramerVonMisesSorted(e.sortedVals[attr], cond)
	default: // WelchT
		if len(cond) < 2 {
			return 0
		}
		condMean, condVar := stats.MeanVar(cond)
		res := stats.WelchTestMoments(
			e.margMean[attr], e.margVar[attr], float64(e.ds.N()),
			condMean, condVar, float64(len(cond)),
		)
		return 1 - res.P
	}
}

// ContrastOf is a convenience wrapper: it computes the contrast of a single
// subspace with a self-contained evaluator, stream and scratch.
func ContrastOf(ds *dataset.Dataset, s subspace.Subspace, p Params) (float64, error) {
	if err := s.Validate(ds.D()); err != nil {
		return 0, err
	}
	if s.Dim() < 2 {
		return 0, fmt.Errorf("core: contrast needs at least 2 dimensions, got %d", s.Dim())
	}
	e := NewEvaluator(ds, p)
	r := rng.New(p.Seed).Derive(hashSubspace(s))
	return e.Contrast(s, r, e.NewScratch()), nil
}

// hashSubspace maps a subspace to a stable stream label (FNV-1a over the
// dimension list) so that the Monte Carlo result for a subspace does not
// depend on evaluation order or worker scheduling.
func hashSubspace(s subspace.Subspace) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, d := range s {
		v := uint64(d)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	return h
}
