package core

import (
	"context"
	"math"
	"testing"

	"hics/internal/dataset"
	"hics/internal/subspace"
)

// TestAdaptiveMatchesFlatWithoutPruningPressure: when every candidate is
// retained anyway (candidates ≤ Cutoff) the racing scheduler has no cut to
// race against and must reproduce the flat schedule bit for bit — same
// subspaces, same float64 contrasts.
func TestAdaptiveMatchesFlatWithoutPruningPressure(t *testing.T) {
	ds := correlatedPair(11, 400, 4) // 6 pairs, all retained at Cutoff 10
	flat := Params{M: 60, Seed: 9, Cutoff: 10, TopK: -1, MaxDim: 2}
	adaptive := flat
	adaptive.AdaptiveM = true
	rf, err := Search(ds, flat)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Search(ds, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if len(rf.Subspaces) != len(ra.Subspaces) {
		t.Fatalf("result sizes differ: flat %d, adaptive %d", len(rf.Subspaces), len(ra.Subspaces))
	}
	for i := range rf.Subspaces {
		if !rf.Subspaces[i].S.Equal(ra.Subspaces[i].S) || rf.Subspaces[i].Score != ra.Subspaces[i].Score {
			t.Fatalf("entry %d differs: flat %v=%v, adaptive %v=%v", i,
				rf.Subspaces[i].S, rf.Subspaces[i].Score, ra.Subspaces[i].S, ra.Subspaces[i].Score)
		}
	}
	if ra.PrunedEarly != 0 {
		t.Errorf("PrunedEarly = %d without pruning pressure, want 0", ra.PrunedEarly)
	}
	if ra.MCIterations != rf.MCIterations {
		t.Errorf("MCIterations = %d, flat spent %d", ra.MCIterations, rf.MCIterations)
	}
}

// TestAdaptivePrunesAndAgreesOnTop: under real pruning pressure the
// scheduler must save budget (prune early, spend fewer iterations than
// candidates×M) while still ranking the planted high-contrast subspace
// first — and every subspace it retains carries its exact flat-M contrast,
// because survivors always complete all M iterations on their own stream.
func TestAdaptivePrunesAndAgreesOnTop(t *testing.T) {
	ds := correlatedPair(12, 800, 10) // 45 pairs racing for Cutoff 8
	flat := Params{M: 100, Seed: 13, Cutoff: 8, TopK: 5, MaxDim: 2}
	adaptive := flat
	adaptive.AdaptiveM = true
	rf, err := Search(ds, flat)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Search(ds, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if ra.PrunedEarly == 0 {
		t.Error("expected the scheduler to prune candidates on 45-way pressure")
	}
	if ra.MCIterations >= ra.Evaluated*100 {
		t.Errorf("MCIterations = %d, no saving over the flat budget %d", ra.MCIterations, ra.Evaluated*100)
	}
	if !ra.Subspaces[0].S.SupersetOf(subspace.New(0, 1)) {
		t.Errorf("adaptive top subspace %v does not contain the planted pair", ra.Subspaces[0].S)
	}
	// Retained subspaces completed all M iterations, so wherever the two
	// schedules agree on a subspace the contrast is the identical float64.
	flatScore := map[string]float64{}
	for _, sc := range rf.Subspaces {
		flatScore[sc.S.Key()] = sc.Score
	}
	agreed := 0
	for _, sc := range ra.Subspaces {
		if want, ok := flatScore[sc.S.Key()]; ok {
			agreed++
			if sc.Score != want {
				t.Errorf("retained subspace %v: adaptive contrast %v != flat %v", sc.S, sc.Score, want)
			}
		}
	}
	if agreed == 0 {
		t.Error("flat and adaptive top sets share no subspace")
	}
}

// TestAdaptiveDeterministicAcrossWorkers: pruning decisions are computed
// single-threaded at round barriers, so the adaptive result must be
// bit-for-bit independent of the worker count.
func TestAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	ds := correlatedPair(14, 500, 8)
	p := Params{M: 40, Seed: 15, Cutoff: 6, TopK: 10, MaxDim: 2, AdaptiveM: true}
	p1 := p
	p1.Workers = 1
	p4 := p
	p4.Workers = 4
	r1, err := Search(ds, p1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Search(ds, p4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MCIterations != r4.MCIterations || r1.PrunedEarly != r4.PrunedEarly {
		t.Fatalf("budget accounting depends on workers: (%d, %d) vs (%d, %d)",
			r1.MCIterations, r1.PrunedEarly, r4.MCIterations, r4.PrunedEarly)
	}
	if len(r1.Subspaces) != len(r4.Subspaces) {
		t.Fatalf("result sizes differ: %d vs %d", len(r1.Subspaces), len(r4.Subspaces))
	}
	for i := range r1.Subspaces {
		if !r1.Subspaces[i].S.Equal(r4.Subspaces[i].S) || r1.Subspaces[i].Score != r4.Subspaces[i].Score {
			t.Fatalf("entry %d differs across worker counts", i)
		}
	}
}

// TestAdaptiveCancellation: a cancelled context surfaces promptly from the
// racing scheduler as ctx.Err(), before and between rounds.
func TestAdaptiveCancellation(t *testing.T) {
	ds := correlatedPair(16, 300, 6)
	p := Params{M: 50, Seed: 17, Cutoff: 5, AdaptiveM: true}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SearchContext(ctx, ds, p); err != context.Canceled {
		t.Fatalf("cancelled adaptive search returned %v, want context.Canceled", err)
	}
}

// TestSubsampleWithinTolerance: the bounded-subsample contrast must stay
// close to the full-data contrast — it estimates the same quantity on a
// uniform row sample — on both high- and low-contrast subspaces.
func TestSubsampleWithinTolerance(t *testing.T) {
	pFull := Params{M: 100, Seed: 19}
	pSub := pFull
	pSub.MaxSampleRows = 1000
	for name, ds := range map[string]*dataset.Dataset{
		"correlated":   correlatedPair(18, 5000, 2),
		"uncorrelated": uncorrelated(20, 5000, 2),
	} {
		full, err := ContrastOf(ds, subspace.New(0, 1), pFull)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := ContrastOf(ds, subspace.New(0, 1), pSub)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(full-sub) > 0.1 {
			t.Errorf("%s: subsampled contrast %v vs full %v, |Δ| > 0.1", name, sub, full)
		}
	}
}

// TestSubsampleDeterministicAndGated: the subsample is drawn from a
// derived stream keyed to the subspace, so repeated calls agree exactly;
// and a bound at or above N changes nothing — bit-for-bit the full-data
// contrast.
func TestSubsampleDeterministicAndGated(t *testing.T) {
	ds := correlatedPair(21, 2000, 3)
	p := Params{M: 50, Seed: 22, MaxSampleRows: 500}
	a, err := ContrastOf(ds, subspace.New(0, 1, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ContrastOf(ds, subspace.New(0, 1, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("subsampled contrast not deterministic: %v vs %v", a, b)
	}
	pOff := p
	pOff.MaxSampleRows = 0
	pHigh := p
	pHigh.MaxSampleRows = ds.N() // bound == N: no subsample engaged
	full, err := ContrastOf(ds, subspace.New(0, 1, 2), pOff)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := ContrastOf(ds, subspace.New(0, 1, 2), pHigh)
	if err != nil {
		t.Fatal(err)
	}
	if gated != full {
		t.Errorf("MaxSampleRows = N changed the contrast: %v vs %v", gated, full)
	}
}

// TestSubsampleParentStreamUntouched: engaging the subsample derives its
// randomness from a side stream, so the Monte Carlo iteration stream is
// unperturbed — the same seed draws the same slices whether or not the
// run is subsampled. Observable consequence: two different bounds on the
// same data still produce highly similar estimates (same slice pattern on
// different row samples), and the full run is exactly reproducible after
// a subsampled one.
func TestSubsampleParentStreamUntouched(t *testing.T) {
	ds := correlatedPair(23, 3000, 2)
	full1, err := ContrastOf(ds, subspace.New(0, 1), Params{M: 50, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ContrastOf(ds, subspace.New(0, 1), Params{M: 50, Seed: 24, MaxSampleRows: 800}); err != nil {
		t.Fatal(err)
	}
	full2, err := ContrastOf(ds, subspace.New(0, 1), Params{M: 50, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if full1 != full2 {
		t.Errorf("full contrast not reproducible around a subsampled run: %v vs %v", full1, full2)
	}
}

// TestAdaptiveWithSubsampleSearch: the two knobs compose — a search with
// both enabled still finds the planted subspace and reports a reduced
// budget.
func TestAdaptiveWithSubsampleSearch(t *testing.T) {
	ds := correlatedPair(25, 2000, 8)
	p := Params{M: 60, Seed: 26, Cutoff: 6, TopK: 5, MaxDim: 2, AdaptiveM: true, MaxSampleRows: 500}
	res, err := Search(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Subspaces[0].S.SupersetOf(subspace.New(0, 1)) {
		t.Errorf("top subspace %v does not contain the planted pair", res.Subspaces[0].S)
	}
	if res.MCIterations >= res.Evaluated*60 {
		t.Errorf("no budget saving: spent %d of %d", res.MCIterations, res.Evaluated*60)
	}
}
