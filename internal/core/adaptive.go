package core

import (
	"context"
	"math"
	"sort"

	"hics/internal/parallel"
	"hics/internal/rng"
	"hics/internal/subspace"
)

// The adaptive scheduler replaces the flat M-iterations-per-candidate
// contrast loop with successive-halving-style racing: all candidates of an
// Apriori level advance in rounds, and after every round each undecided
// candidate's running mean ± confidence radius is compared against the
// level's retention cut (the Cutoff-th best lower bound). A candidate whose
// upper bound falls below the cut is statistically decided against
// retention — spending its remaining Monte Carlo budget cannot change the
// level's outcome, so it stops early and keeps its partial estimate.
//
// Two properties follow from the design:
//
//   - Candidates that survive to retention always complete all M
//     iterations on their own per-subspace stream, so their contrasts are
//     bit-for-bit the flat-M values; only discarded candidates carry
//     partial estimates.
//   - Rounds are global barriers and pruning decisions are computed
//     single-threaded from the full candidate state, so results are
//     deterministic and independent of the worker count — exactly like the
//     flat path.

// adaptiveZ scales the confidence radius: a CLT-style bound of z standard
// errors on the running mean of [0,1]-valued deviations. z = 3 keeps the
// per-comparison error probability below ~0.3%, conservative enough that a
// candidate belonging above the cut is practically never pruned.
const adaptiveZ = 3.0

// adaptiveRounds splits M into this many racing rounds; more rounds prune
// earlier but pay more barrier synchronizations.
const adaptiveRounds = 8

// adaptiveMinIters is the minimum number of iterations a candidate must
// have before it may be pruned — below this the empirical variance is too
// unreliable to act on.
const adaptiveMinIters = 10

// scoreAllAdaptive evaluates the candidates' contrasts with the racing
// scheduler. It returns the scored candidates plus the Monte Carlo
// iterations actually spent and the number of candidates pruned early.
func scoreAllAdaptive(ctx context.Context, eval *Evaluator, base *rng.RNG, candidates []subspace.Subspace, p Params) ([]subspace.Scored, int, int, error) {
	nCand := len(candidates)
	runs := make([]*run, nCand)
	for i, s := range candidates {
		runs[i] = eval.newRun(s, base.Derive(hashSubspace(s)))
	}
	pruned := make([]bool, nCand)

	// The retention cut: the level keeps its top Cutoff candidates, so a
	// candidate decided below the Cutoff-th best cannot affect the search.
	// When every candidate is retained anyway there is no cut to race
	// against, and the loop degenerates to the flat schedule.
	keep := p.Cutoff
	canPrune := nCand > keep

	roundSize := (p.M + adaptiveRounds - 1) / adaptiveRounds
	if roundSize < adaptiveMinIters {
		roundSize = adaptiveMinIters
	}

	workers := parallel.WorkerCount(p.Workers, nCand)
	scratches := make([]*Scratch, workers)
	active := make([]int, 0, nCand)
	for i := range runs {
		active = append(active, i)
	}
	lcbs := make([]float64, 0, nCand)

	for len(active) > 0 {
		err := parallel.ForEach(ctx, len(active), workers, 1, func(w, ai int) error {
			sc := scratches[w]
			if sc == nil {
				sc = eval.NewScratch()
				scratches[w] = sc
			}
			ru := runs[active[ai]]
			step := roundSize
			if rem := p.M - ru.done; step > rem {
				step = rem
			}
			return ru.advance(ctx, step, sc)
		})
		if err != nil {
			return nil, 0, 0, err
		}

		if canPrune {
			// The cut: the keep-th largest lower confidence bound over all
			// candidates still in contention (pruned ones were decided
			// below it and cannot raise it).
			lcbs = lcbs[:0]
			for i, ru := range runs {
				if !pruned[i] {
					lcbs = append(lcbs, ru.estimate()-ru.radius())
				}
			}
			sort.Float64s(lcbs)
			threshold := lcbs[len(lcbs)-keep]
			for _, i := range active {
				ru := runs[i]
				if ru.done >= p.M || ru.done < adaptiveMinIters {
					continue
				}
				if ru.estimate()+ru.radius() < threshold {
					pruned[i] = true
				}
			}
		}

		next := active[:0]
		for _, i := range active {
			if runs[i].done < p.M && !pruned[i] {
				next = append(next, i)
			}
		}
		active = next
	}

	scored := make([]subspace.Scored, nCand)
	spent, nPruned := 0, 0
	for i, ru := range runs {
		scored[i] = subspace.Scored{S: candidates[i], Score: ru.estimate()}
		spent += ru.done
		if pruned[i] {
			nPruned++
		}
	}
	return scored, spent, nPruned, nil
}

// radius is the confidence radius of the run's estimate: adaptiveZ
// standard errors of the running mean.
func (ru *run) radius() float64 {
	if ru.done == 0 {
		return 1
	}
	return adaptiveZ * math.Sqrt(ru.variance()/float64(ru.done))
}
