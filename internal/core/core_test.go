package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"hics/internal/dataset"
	"hics/internal/rng"
	"hics/internal/subspace"
)

// uncorrelated builds n objects with d independent uniform attributes.
func uncorrelated(seed uint64, n, d int) *dataset.Dataset {
	r := rng.New(seed)
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = r.Float64()
		}
	}
	return dataset.MustNew(nil, cols)
}

// correlatedPair builds a dataset whose first two attributes are strongly
// correlated (y = x + small noise) and whose remaining attributes are
// independent noise.
func correlatedPair(seed uint64, n, d int) *dataset.Dataset {
	r := rng.New(seed)
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		x := r.Float64()
		cols[0][i] = x
		cols[1][i] = x + r.NormalScaled(0, 0.01)
		for j := 2; j < d; j++ {
			cols[j][i] = r.Float64()
		}
	}
	return dataset.MustNew(nil, cols)
}

func TestContrastSeparatesCorrelation(t *testing.T) {
	for _, test := range []Test{WelchT, KolmogorovSmirnov, MannWhitney, CramerVonMises} {
		p := Params{M: 100, Alpha: 0.15, Seed: 1, Test: test}
		corr := correlatedPair(2, 600, 2)
		unc := uncorrelated(3, 600, 2)
		cCorr, err := ContrastOf(corr, subspace.New(0, 1), p)
		if err != nil {
			t.Fatal(err)
		}
		cUnc, err := ContrastOf(unc, subspace.New(0, 1), p)
		if err != nil {
			t.Fatal(err)
		}
		if cCorr <= cUnc+0.15 {
			t.Errorf("%v: contrast(correlated)=%v not clearly above contrast(uncorrelated)=%v",
				test, cCorr, cUnc)
		}
		// For y ≈ x on uniforms the expected KS deviation is ~0.45 (the
		// conditional is a width-α1 uniform inside the marginal), while the
		// Welch deviation saturates towards 1; both must clear 0.35.
		if cCorr < 0.35 {
			t.Errorf("%v: correlated contrast = %v, expected high", test, cCorr)
		}
	}
}

func TestContrastBounds(t *testing.T) {
	ds := correlatedPair(4, 300, 3)
	for _, test := range []Test{WelchT, KolmogorovSmirnov, MannWhitney, CramerVonMises} {
		c, err := ContrastOf(ds, subspace.New(0, 1, 2), Params{M: 50, Seed: 2, Test: test})
		if err != nil {
			t.Fatal(err)
		}
		if c < 0 || c > 1 {
			t.Errorf("%v contrast out of [0,1]: %v", test, c)
		}
	}
}

func TestContrastDeterministicAcrossWorkers(t *testing.T) {
	ds := correlatedPair(5, 400, 6)
	p := Params{M: 20, Seed: 7, Cutoff: 50, TopK: 10}
	p1 := p
	p1.Workers = 1
	p4 := p
	p4.Workers = 4
	r1, err := Search(ds, p1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Search(ds, p4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Subspaces) != len(r4.Subspaces) {
		t.Fatalf("worker counts changed result size: %d vs %d", len(r1.Subspaces), len(r4.Subspaces))
	}
	for i := range r1.Subspaces {
		if !r1.Subspaces[i].S.Equal(r4.Subspaces[i].S) || r1.Subspaces[i].Score != r4.Subspaces[i].Score {
			t.Fatalf("entry %d differs: %v=%v vs %v=%v", i,
				r1.Subspaces[i].S, r1.Subspaces[i].Score, r4.Subspaces[i].S, r4.Subspaces[i].Score)
		}
	}
}

func TestSearchFindsPlantedSubspace(t *testing.T) {
	// Attributes 0-1 strongly correlated, 2-5 noise: {0,1} must rank first.
	ds := correlatedPair(6, 500, 6)
	res, err := Search(ds, Params{M: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) == 0 {
		t.Fatal("no subspaces returned")
	}
	if !res.Subspaces[0].S.SupersetOf(subspace.New(0, 1)) {
		t.Errorf("top subspace %v does not contain the planted pair", res.Subspaces[0].S)
	}
}

func TestSearchCutoffLimitsLevels(t *testing.T) {
	ds := uncorrelated(8, 200, 10)
	res, err := Search(ds, Params{M: 10, Seed: 4, Cutoff: 5, TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	for lvl, list := range res.Levels {
		if len(list) > 5 {
			t.Errorf("level %d retained %d candidates, cutoff 5", lvl, len(list))
		}
	}
}

func TestSearchMaxDim(t *testing.T) {
	ds := correlatedPair(9, 300, 5)
	res, err := Search(ds, Params{M: 10, Seed: 5, MaxDim: 2, TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range res.Subspaces {
		if sc.S.Dim() > 2 {
			t.Errorf("MaxDim=2 violated by %v", sc.S)
		}
	}
	if len(res.Levels) != 1 {
		t.Errorf("expected a single level, got %d", len(res.Levels))
	}
}

func TestSearchTopK(t *testing.T) {
	ds := uncorrelated(10, 150, 8)
	res, err := Search(ds, Params{M: 5, Seed: 6, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subspaces) > 3 {
		t.Errorf("TopK=3 returned %d subspaces", len(res.Subspaces))
	}
	// Sorted descending.
	for i := 1; i < len(res.Subspaces); i++ {
		if res.Subspaces[i].Score > res.Subspaces[i-1].Score {
			t.Error("result not sorted by descending contrast")
		}
	}
}

func TestSearchErrors(t *testing.T) {
	ds := dataset.MustNew(nil, [][]float64{{1, 2, 3}})
	if _, err := Search(ds, Params{}); err == nil {
		t.Error("single-attribute search should fail")
	}
}

func TestContrastOfValidation(t *testing.T) {
	ds := uncorrelated(11, 50, 3)
	if _, err := ContrastOf(ds, subspace.New(0, 7), Params{}); err == nil {
		t.Error("out-of-range subspace should fail")
	}
	if _, err := ContrastOf(ds, subspace.New(1), Params{}); err == nil {
		t.Error("one-dimensional subspace should fail")
	}
}

func TestSearcherAdapter(t *testing.T) {
	ds := correlatedPair(12, 200, 4)
	s := &Searcher{Params: Params{M: 10, Seed: 1}}
	list, err := s.Search(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) == 0 {
		t.Fatal("adapter returned nothing")
	}
	if s.Name() != "HiCS" {
		t.Errorf("Name = %q", s.Name())
	}
	ks := &Searcher{Params: Params{Test: KolmogorovSmirnov}}
	if ks.Name() != "HiCS_KS" {
		t.Errorf("KS name = %q", ks.Name())
	}
	if (&Searcher{Params: Params{Test: MannWhitney}}).Name() != "HiCS_MW" {
		t.Error("MW name wrong")
	}
	if (&Searcher{Params: Params{Test: CramerVonMises}}).Name() != "HiCS_CVM" {
		t.Error("CVM name wrong")
	}
}

func TestParseTest(t *testing.T) {
	for _, s := range []string{"welch", "wt", "t"} {
		if tt, err := ParseTest(s); err != nil || tt != WelchT {
			t.Errorf("ParseTest(%q) = %v, %v", s, tt, err)
		}
	}
	if tt, err := ParseTest("ks"); err != nil || tt != KolmogorovSmirnov {
		t.Errorf("ParseTest(ks) = %v, %v", tt, err)
	}
	if tt, err := ParseTest("mw"); err != nil || tt != MannWhitney {
		t.Errorf("ParseTest(mw) = %v, %v", tt, err)
	}
	if tt, err := ParseTest("cvm"); err != nil || tt != CramerVonMises {
		t.Errorf("ParseTest(cvm) = %v, %v", tt, err)
	}
	if _, err := ParseTest("bogus"); err == nil {
		t.Error("bogus test name accepted")
	}
	if WelchT.String() != "welch" || KolmogorovSmirnov.String() != "ks" ||
		MannWhitney.String() != "mw" || CramerVonMises.String() != "cvm" {
		t.Error("String() names wrong")
	}
	if Test(99).String() == "" {
		t.Error("unknown test should still render")
	}
}

func TestPruningAblation(t *testing.T) {
	ds := correlatedPair(13, 300, 5)
	with, err := Search(ds, Params{M: 20, Seed: 9, TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Search(ds, Params{M: 20, Seed: 9, TopK: -1, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(without.Subspaces) < len(with.Subspaces) {
		t.Errorf("pruning enlarged the list: %d -> %d", len(without.Subspaces), len(with.Subspaces))
	}
}

// TestScratchStampWraparound is the regression test for the int32
// iteration-stamp overflow: a long-lived Scratch whose stamp counter wraps
// must not let stale stamps collide with reused counter values (which
// would silently corrupt the conjunction counts and change the contrast).
func TestScratchStampWraparound(t *testing.T) {
	ds := correlatedPair(7, 300, 2)
	ds.EnsureIndexes()
	e := NewEvaluator(ds, Params{M: 40, Alpha: 0.15})
	s := subspace.New(0, 1)
	stream := func() *rng.RNG { return rng.New(9).Derive(hashSubspace(s)) }
	fresh := e.Contrast(s, stream(), e.NewScratch())
	if fresh <= 0.2 {
		t.Fatalf("correlated contrast %v too weak for the test to be meaningful", fresh)
	}

	// A scratch about to wrap, with adversarial stale state: every stamp
	// holds the value the wrapped counter would reuse first, and every
	// count is garbage that only a correct reset clears.
	sc := e.NewScratch()
	sc.iter = math.MaxInt32 - 3 // wraps on the 4th Monte Carlo iteration
	for i := range sc.stamp {
		sc.stamp[i] = math.MinInt32
		sc.count[i] = 100
	}
	wrapped := e.Contrast(s, stream(), sc)
	if wrapped != fresh {
		t.Fatalf("contrast after stamp wraparound = %v, fresh scratch = %v", wrapped, fresh)
	}
	if sc.iter < 0 {
		t.Fatalf("scratch iteration counter left negative: %d", sc.iter)
	}
	// The scratch stays reusable after the wrap.
	if again := e.Contrast(s, stream(), sc); again != fresh {
		t.Fatalf("contrast on reused wrapped scratch = %v, fresh = %v", again, fresh)
	}
}

func TestHashSubspaceDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			s := subspace.New(i, j)
			h := hashSubspace(s)
			if prev, ok := seen[h]; ok {
				t.Fatalf("hash collision between %s and %v", prev, s)
			}
			seen[h] = s.Key()
		}
	}
	// Order-insensitive because Subspace is canonical.
	if hashSubspace(subspace.New(3, 1)) != hashSubspace(subspace.New(1, 3)) {
		t.Error("hash differs for identical canonical subspaces")
	}
}

// Property: contrast is always in [0,1] for arbitrary data and both tests.
func TestQuickContrastBounds(t *testing.T) {
	f := func(seed uint64, dRaw, testRaw uint8) bool {
		d := int(dRaw%3) + 2
		ds := uncorrelated(seed, 80, d)
		tt := WelchT
		if testRaw%2 == 1 {
			tt = KolmogorovSmirnov
		}
		c, err := ContrastOf(ds, subspace.Full(d), Params{M: 10, Seed: seed, Test: tt})
		if err != nil {
			return false
		}
		return c >= 0 && c <= 1 && !math.IsNaN(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: search results are deterministic for a fixed seed.
func TestQuickSearchDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		ds := correlatedPair(seed, 120, 4)
		p := Params{M: 8, Seed: seed, TopK: 5}
		a, err1 := Search(ds, p)
		b, err2 := Search(ds, p)
		if err1 != nil || err2 != nil || len(a.Subspaces) != len(b.Subspaces) {
			return false
		}
		for i := range a.Subspaces {
			if !a.Subspaces[i].S.Equal(b.Subspaces[i].S) || a.Subspaces[i].Score != b.Subspaces[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkContrast2D(b *testing.B) {
	ds := correlatedPair(1, 1000, 2)
	ds.EnsureIndexes()
	e := NewEvaluator(ds, Params{M: 50, Seed: 1})
	sc := e.NewScratch()
	r := rng.New(1)
	s := subspace.New(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Contrast(s, r, sc)
	}
}

func BenchmarkContrast5D(b *testing.B) {
	ds := uncorrelated(1, 1000, 5)
	ds.EnsureIndexes()
	e := NewEvaluator(ds, Params{M: 50, Seed: 1})
	sc := e.NewScratch()
	r := rng.New(1)
	s := subspace.Full(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Contrast(s, r, sc)
	}
}
