package core

import (
	"math"
	"testing"
	"testing/quick"

	"hics/internal/dataset"
	"hics/internal/rng"
	"hics/internal/subspace"
	"hics/internal/synth"
)

// The Fig. 3 counterexample: a 3-d XOR-box dataset whose two-dimensional
// projections are all uniform while the full 3-d space is strongly
// correlated. The paper uses it to show contrast is not monotone, i.e. no
// Apriori downward-closure can be exact. Our contrast measure must rate
// the 3-d subspace far above every 2-d projection.
func TestXORBoxNonMonotonicity(t *testing.T) {
	ds := synth.XORBox(2000, 1)
	// Small α keeps the slice width below one XOR half-box; with the
	// default α=0.1 a condition block spans 46% of the range and often
	// straddles the box boundary, diluting the visible correlation.
	p := Params{M: 500, Alpha: 0.02, Seed: 3, Test: KolmogorovSmirnov}
	c3, err := ContrastOf(ds, subspace.New(0, 1, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []subspace.Subspace{
		subspace.New(0, 1), subspace.New(0, 2), subspace.New(1, 2),
	} {
		c2, err := ContrastOf(ds, pair, p)
		if err != nil {
			t.Fatal(err)
		}
		if c3 <= 2*c2 {
			t.Errorf("3-d contrast %v not clearly above 2-d projection %v (%v)", c3, pair, c2)
		}
	}
}

// The KS instantiation works purely on ranks of the conditional vs the
// marginal sample, and the slice construction uses only the per-attribute
// sorted order — so applying any strictly increasing transform to an
// attribute must leave the HiCS_KS contrast unchanged.
func TestKSContrastMonotoneTransformInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		base := correlatedPair(seed, 200, 3)
		// Transform each column with a different strictly monotone map.
		transforms := []func(float64) float64{
			func(v float64) float64 { return math.Exp(2 * v) },
			func(v float64) float64 { return v*v*v + 5*v },
			func(v float64) float64 { return math.Atan(3 * v) },
		}
		cols := make([][]float64, base.D())
		for d := 0; d < base.D(); d++ {
			src := base.Col(d)
			dst := make([]float64, len(src))
			for i, v := range src {
				dst[i] = transforms[d](v)
			}
			cols[d] = dst
		}
		warped := dataset.MustNew(nil, cols)
		p := Params{M: 30, Seed: seed, Test: KolmogorovSmirnov}
		s := subspace.New(0, 1, 2)
		c1, err1 := ContrastOf(base, s, p)
		c2, err2 := ContrastOf(warped, s, p)
		return err1 == nil && err2 == nil && math.Abs(c1-c2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Shuffling object order must not change the contrast: the measure sees
// the empirical distribution, not the row order. (Sorted indices break
// ties by object id, but with continuous data ties are absent.)
func TestContrastRowOrderInvariant(t *testing.T) {
	base := correlatedPair(9, 300, 2)
	perm := rng.New(4).Perm(300)
	cols := make([][]float64, 2)
	for d := 0; d < 2; d++ {
		src := base.Col(d)
		dst := make([]float64, len(src))
		for i, pi := range perm {
			dst[i] = src[pi]
		}
		cols[d] = dst
	}
	shuffled := dataset.MustNew(nil, cols)
	for _, tt := range []Test{WelchT, KolmogorovSmirnov} {
		p := Params{M: 100, Seed: 5, Test: tt}
		c1, err := ContrastOf(base, subspace.New(0, 1), p)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := ContrastOf(shuffled, subspace.New(0, 1), p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c1-c2) > 1e-12 {
			t.Errorf("%v: contrast depends on row order: %v vs %v", tt, c1, c2)
		}
	}
}

// Duplicating every object must not substantially change the contrast
// (the measure estimates distributions, which are invariant under
// sample duplication up to Monte Carlo noise and test power).
func TestContrastStableUnderDuplication(t *testing.T) {
	base := correlatedPair(11, 250, 2)
	cols := make([][]float64, 2)
	for d := 0; d < 2; d++ {
		src := base.Col(d)
		cols[d] = append(append([]float64(nil), src...), src...)
	}
	doubled := dataset.MustNew(nil, cols)
	p := Params{M: 200, Seed: 6, Test: KolmogorovSmirnov}
	c1, err := ContrastOf(base, subspace.New(0, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ContrastOf(doubled, subspace.New(0, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c1-c2) > 0.1 {
		t.Errorf("contrast unstable under duplication: %v vs %v", c1, c2)
	}
}

// Failure injection: constant attributes must not crash any instantiation
// and must yield low-to-moderate contrast (a constant column carries no
// dependence information).
func TestContrastConstantAttribute(t *testing.T) {
	r := rng.New(12)
	n := 200
	x := make([]float64, n)
	c := make([]float64, n) // all zeros
	for i := range x {
		x[i] = r.Float64()
	}
	ds := dataset.MustNew(nil, [][]float64{x, c})
	for _, tt := range []Test{WelchT, KolmogorovSmirnov, MannWhitney, CramerVonMises} {
		got, err := ContrastOf(ds, subspace.New(0, 1), Params{M: 50, Seed: 7, Test: tt})
		if err != nil {
			t.Fatalf("%v: %v", tt, err)
		}
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Errorf("%v: contrast with constant attribute = %v", tt, got)
		}
	}
}

// Failure injection: heavy ties (integer-valued data) must stay in range
// for every instantiation.
func TestContrastHeavyTies(t *testing.T) {
	r := rng.New(13)
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := float64(r.Intn(4))
		x[i] = v
		y[i] = v // perfectly dependent categorical-like data
	}
	ds := dataset.MustNew(nil, [][]float64{x, y})
	for _, tt := range []Test{WelchT, KolmogorovSmirnov, MannWhitney, CramerVonMises} {
		got, err := ContrastOf(ds, subspace.New(0, 1), Params{M: 50, Seed: 8, Test: tt})
		if err != nil {
			t.Fatalf("%v: %v", tt, err)
		}
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Errorf("%v: contrast with ties = %v", tt, got)
		}
	}
}
