package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.NewGauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestCounterRejectsDecrement(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "")
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	c.Add(-1)
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("http_requests_total", "requests", "endpoint", "code")
	v.With("score", "200").Add(3)
	v.With("score", "400").Inc()
	v.With("rank", "200").Inc()
	if got := v.With("score", "200").Value(); got != 3 {
		t.Errorf(`With("score","200") = %d, want 3`, got)
	}
	if got := v.Total(); got != 5 {
		t.Errorf("Total() = %d, want 5", got)
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("streams_active", "open streams", "model")
	v.With("alpha").Add(2)
	v.With("beta").Set(3)
	v.With("alpha").Add(-1)
	if got := v.With("alpha").Value(); got != 1 {
		t.Errorf(`With("alpha") = %v, want 1`, got)
	}
	if got := v.Total(); got != 4 {
		t.Errorf("Total() = %v, want 4", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	for _, line := range []string{
		"# TYPE streams_active gauge",
		`streams_active{model="alpha"} 1`,
		`streams_active{model="beta"} 3`,
	} {
		if !strings.Contains(b.String(), line) {
			t.Errorf("output missing %q:\n%s", line, b.String())
		}
	}
}

func TestVecDelete(t *testing.T) {
	r := NewRegistry()
	g := r.NewGaugeVec("model_subspaces", "", "model")
	c := r.NewCounterVec("model_requests_total", "", "model")
	g.With("alpha").Set(5)
	g.With("beta").Set(7)
	c.With("alpha").Add(3)

	g.Delete("alpha")
	c.Delete("alpha")
	g.Delete("missing") // no-op

	if got := g.Total(); got != 7 {
		t.Errorf("gauge Total() after delete = %v, want 7", got)
	}
	if got := c.Total(); got != 0 {
		t.Errorf("counter Total() after delete = %d, want 0", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), `model="alpha"`) {
		t.Errorf("deleted series still rendered:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `model_subspaces{model="beta"} 7`) {
		t.Errorf("surviving series missing:\n%s", b.String())
	}
	// A recreated series starts from zero.
	if got := g.With("alpha").Value(); got != 0 {
		t.Errorf("recreated series = %v, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count() = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-55.65) > 1e-9 {
		t.Errorf("Sum() = %v, want 55.65", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	// Cumulative buckets: 0.1 catches 0.05 and the boundary value 0.1
	// (le is inclusive), 1 adds 0.5, 10 adds 5, +Inf adds 50.
	for _, line := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 55.65`,
		`lat_seconds_count 5`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("output missing %q:\n%s", line, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("b_total", "with \"quotes\" and\nnewline", "path").With(`a"b\c`).Inc()
	r.NewGauge("a_gauge", "first alphabetically").Set(1)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	// Families render sorted by name.
	if ai, bi := strings.Index(out, "a_gauge"), strings.Index(out, "b_total"); ai < 0 || bi < 0 || ai > bi {
		t.Errorf("families not sorted:\n%s", out)
	}
	if !strings.Contains(out, `b_total{path="a\"b\\c"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	if !strings.Contains(out, `# HELP b_total with "quotes" and\nnewline`) {
		t.Errorf("HELP newline not escaped:\n%s", out)
	}
	// Every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Split(line, " "); len(parts) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid name did not panic")
		}
	}()
	r.NewCounter("0bad-name", "")
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "").Add(7)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text format", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "x_total 7") {
		t.Errorf("body missing sample:\n%s", buf[:n])
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("c_total", "", "w")
	h := r.NewHistogram("h_seconds", "", nil)
	g := r.NewGauge("g", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.With("a").Inc()
				h.Observe(0.001 * float64(i%10))
				g.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Total(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
	if got := g.Value(); got != 8000 {
		t.Errorf("gauge = %v, want 8000", got)
	}
}
