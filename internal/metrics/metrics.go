// Package metrics is the repository's dependency-free instrumentation
// registry: counters, gauges and fixed-bucket latency histograms,
// registered once at package init and rendered in the Prometheus text
// exposition format (version 0.0.4) by the hicsd GET /metrics endpoint.
//
// The package deliberately implements the minimal subset of the
// Prometheus data model the serving layer needs — no client_golang
// dependency, no push, no exemplars:
//
//   - Counter / CounterVec: monotonically increasing int64, optionally
//     partitioned by a fixed label set (e.g. per endpoint and status
//     code).
//   - Gauge: a float64 that goes up and down (active streams, model
//     metadata).
//   - Histogram / HistogramVec: cumulative fixed buckets plus _sum and
//     _count, for request and refit latencies.
//
// Every constructor registers into the given Registry and panics on a
// duplicate or malformed name — registration is init-time programmer
// intent, not runtime input. The package-level Default registry is the
// one process-wide instance every instrumented layer (internal/serve,
// internal/stream, internal/parallel) registers into and /metrics
// serves; tests that need isolation construct their own Registry.
//
// All metric types are safe for concurrent use; updates are lock-free
// atomics on the hot path.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry: every instrumented layer
// registers into it at package init, and the hicsd /metrics endpoint
// renders it.
var Default = NewRegistry()

// validName matches the Prometheus metric and label name grammar.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// DefBuckets are the default latency histogram bounds in seconds,
// matching the Prometheus client convention: sub-10ms resolution for the
// frozen-model scoring path through multi-second buckets for full
// rankings and refits.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Desc describes one registered metric family — the enumeration the
// docs/metrics.md cross-check test walks.
type Desc struct {
	// Name is the family name as exposed on /metrics.
	Name string
	// Kind is the TYPE line value: "counter", "gauge" or "histogram".
	Kind string
	// Help is the HELP line text.
	Help string
	// Labels are the family's label names, in declaration order (empty
	// for unlabelled metrics).
	Labels []string
}

// Registry holds a set of metric families and renders them in
// registration-independent sorted order.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric with its (possibly labelled) series.
type family struct {
	desc    Desc
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series // key: joined label values
	order  []string           // series keys in creation order
}

// series is one (label values → value) cell of a family.
type series struct {
	labels []string // label values, aligned with family.desc.Labels

	count atomic.Int64  // counter value / histogram observation count
	bits  atomic.Uint64 // gauge value / histogram sum, as float64 bits

	bucketN []atomic.Int64 // histogram: per-bucket (non-cumulative) counts
}

// NewRegistry constructs an empty registry. Most callers want Default.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a family, panicking on duplicates or malformed names —
// registration happens at package init, so a failure is a programming
// error the first test run catches.
func (r *Registry) register(desc Desc, buckets []float64) *family {
	if !validName.MatchString(desc.Name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", desc.Name))
	}
	for _, l := range desc.Labels {
		if !validName.MatchString(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, desc.Name))
		}
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets must increase strictly", desc.Name))
		}
	}
	f := &family{desc: desc, buckets: buckets, series: make(map[string]*series)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[desc.Name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", desc.Name))
	}
	r.families[desc.Name] = f
	return f
}

// delete drops the series for the given label values, so a scrape no
// longer carries it. Used when the labelled object (e.g. a fleet model)
// is unloaded; deleting a nonexistent series is a no-op.
func (f *family) delete(values ...string) {
	if len(values) != len(f.desc.Labels) {
		panic(fmt.Sprintf("metrics: %q takes %d label values, got %d",
			f.desc.Name, len(f.desc.Labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[key]; !ok {
		return
	}
	delete(f.series, key)
	for i, k := range f.order {
		if k == key {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// get returns (creating if needed) the series for the given label values.
func (f *family) get(values ...string) *series {
	if len(values) != len(f.desc.Labels) {
		panic(fmt.Sprintf("metrics: %q takes %d label values, got %d",
			f.desc.Name, len(f.desc.Labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]string(nil), values...)}
		if f.desc.Kind == "histogram" {
			s.bucketN = make([]atomic.Int64, len(f.buckets)+1) // +1: the +Inf bucket
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Add increments the counter; negative deltas panic (counters only go
// up — use a Gauge for anything that can fall).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter decrement")
	}
	c.s.count.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.s.count.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.s.count.Load() }

// NewCounter registers an unlabelled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(Desc{Name: name, Kind: "counter", Help: help}, nil)
	return &Counter{s: f.get()}
}

// CounterVec is a counter family partitioned by a fixed label set.
type CounterVec struct{ f *family }

// NewCounterVec registers a labelled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: counter vec %q needs at least one label (use NewCounter)", name))
	}
	return &CounterVec{f: r.register(Desc{Name: name, Kind: "counter", Help: help, Labels: labels}, nil)}
}

// With returns the counter for the given label values, creating the
// series on first use.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{s: v.f.get(values...)} }

// Delete drops the series for the given label values from the scrape;
// a subsequent With recreates it at zero.
func (v *CounterVec) Delete(values ...string) { v.f.delete(values...) }

// Total sums the family across all label values — the expvar
// compatibility view aggregates per-endpoint counters this way.
func (v *CounterVec) Total() int64 {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	var sum int64
	for _, s := range v.f.series {
		sum += s.count.Load()
	}
	return sum
}

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// NewGauge registers an unlabelled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(Desc{Name: name, Kind: "gauge", Help: help}, nil)
	return &Gauge{s: f.get()}
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta (negative to decrement).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// GaugeVec is a gauge family partitioned by a fixed label set (e.g. one
// series per served model).
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labelled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: gauge vec %q needs at least one label (use NewGauge)", name))
	}
	return &GaugeVec{f: r.register(Desc{Name: name, Kind: "gauge", Help: help, Labels: labels}, nil)}
}

// With returns the gauge for the given label values, creating the series
// on first use.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{s: v.f.get(values...)} }

// Delete drops the series for the given label values from the scrape;
// a subsequent With recreates it at zero.
func (v *GaugeVec) Delete(values ...string) { v.f.delete(values...) }

// Total sums the family across all label values — the expvar
// compatibility view aggregates per-model gauges this way.
func (v *GaugeVec) Total() float64 {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	var sum float64
	for _, s := range v.f.series {
		sum += math.Float64frombits(s.bits.Load())
	}
	return sum
}

// Histogram accumulates observations into cumulative fixed buckets plus
// a running sum and count.
type Histogram struct {
	s       *series
	buckets []float64
}

// NewHistogram registers an unlabelled histogram with the given strictly
// increasing upper bounds (nil selects DefBuckets). A +Inf bucket is
// implicit.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(Desc{Name: name, Kind: "histogram", Help: help}, buckets)
	return &Histogram{s: f.get(), buckets: f.buckets}
}

// HistogramVec is a histogram family partitioned by a fixed label set.
type HistogramVec struct{ f *family }

// NewHistogramVec registers a labelled histogram family (nil buckets
// selects DefBuckets).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: histogram vec %q needs at least one label (use NewHistogram)", name))
	}
	return &HistogramVec{f: r.register(Desc{Name: name, Kind: "histogram", Help: help, Labels: labels}, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{s: v.f.get(values...), buckets: v.f.buckets}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bound >= v; len(buckets) = +Inf
	h.s.bucketN[i].Add(1)
	h.s.count.Add(1)
	for {
		old := h.s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.s.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.bits.Load()) }

// Describe enumerates every registered family, sorted by name.
func (r *Registry) Describe() []Desc {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Desc, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.desc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, version 0.0.4: families sorted by name, HELP and TYPE lines,
// one sample line per series (histograms expand to cumulative _bucket
// lines plus _sum and _count). Series order within a family is creation
// order, which is stable for a fixed traffic shape.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, desc := range r.Describe() {
		r.mu.RLock()
		f := r.families[desc.Name]
		r.mu.RUnlock()
		if desc.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", desc.Name, escapeHelp(desc.Help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", desc.Name, desc.Kind)
		f.mu.Lock()
		snapshot := make([]*series, 0, len(f.order))
		for _, key := range f.order {
			snapshot = append(snapshot, f.series[key])
		}
		f.mu.Unlock()
		for _, s := range snapshot {
			switch desc.Kind {
			case "counter":
				fmt.Fprintf(w, "%s%s %d\n", desc.Name, labelString(desc.Labels, s.labels, "", 0), s.count.Load())
			case "gauge":
				fmt.Fprintf(w, "%s%s %s\n", desc.Name, labelString(desc.Labels, s.labels, "", 0), formatFloat(math.Float64frombits(s.bits.Load())))
			case "histogram":
				var cum int64
				for i, bound := range f.buckets {
					cum += s.bucketN[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", desc.Name, labelString(desc.Labels, s.labels, "le", bound), cum)
				}
				cum += s.bucketN[len(f.buckets)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", desc.Name, labelString(desc.Labels, s.labels, "le", math.Inf(1)), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", desc.Name, labelString(desc.Labels, s.labels, "", 0), formatFloat(math.Float64frombits(s.bits.Load())))
				fmt.Fprintf(w, "%s_count%s %d\n", desc.Name, labelString(desc.Labels, s.labels, "", 0), s.count.Load())
			}
		}
	}
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		var b strings.Builder
		r.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}

// labelString renders the {k="v",...} clause, appending an le bound for
// histogram bucket lines (leBound is ignored when leName is empty).
func labelString(names, values []string, leName string, leBound float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslash, quote and newline — exactly the
		// exposition-format label-value escaping rules.
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", leName, formatFloat(leBound))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip form, with infinities spelled +Inf / -Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp keeps HELP text on one line.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
