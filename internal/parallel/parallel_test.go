package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachVisitsEveryIndexOnce checks the basic contract across worker
// and chunk configurations, including the inline single-worker path.
func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers, chunk int }{
		{0, 4, 0},
		{1, 4, 0},
		{7, 1, 0},
		{7, 1, 3},
		{100, 3, 1},
		{100, 3, 7},
		{100, 0, 0},
		{5, 100, 0}, // more workers than items
	} {
		counts := make([]int32, tc.n)
		err := ForEach(context.Background(), tc.n, tc.workers, tc.chunk, func(_, i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d workers=%d chunk=%d: %v", tc.n, tc.workers, tc.chunk, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d workers=%d chunk=%d: index %d visited %d times", tc.n, tc.workers, tc.chunk, i, c)
			}
		}
	}
}

// TestForEachWorkerIDs checks every worker id stays within the resolved
// worker range, so per-worker scratch slices are safely indexable.
func TestForEachWorkerIDs(t *testing.T) {
	const n, workers = 1000, 4
	var bad atomic.Int32
	err := ForEach(context.Background(), n, workers, 1, func(w, _ int) error {
		if w < 0 || w >= workers {
			bad.Store(int32(w))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if b := bad.Load(); b != 0 {
		t.Errorf("worker id %d out of range [0,%d)", b, workers)
	}
}

// TestForEachPreCancelled checks an already-cancelled context never
// starts work.
func TestForEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int32
	err := ForEach(ctx, 100, 4, 1, func(_, _ int) error {
		calls.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if c := calls.Load(); c != 0 {
		t.Errorf("fn ran %d times under a pre-cancelled context", c)
	}
}

// TestForEachCancelMidRun checks cancellation stops the fan-out within a
// bounded amount of work and surfaces ctx.Err().
func TestForEachCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	err := ForEach(ctx, 1_000_000, 4, 1, func(_, i int) error {
		if calls.Add(1) == 10 {
			cancel()
		}
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// Workers stop within one chunk each; with chunk=1 the overshoot is a
	// handful of in-flight calls, nowhere near the full million.
	if c := calls.Load(); c > 1000 {
		t.Errorf("fn ran %d times after cancellation, want a bounded overshoot", c)
	}
}

// TestForEachFirstErrorWins checks an fn error cancels the rest and the
// lowest-index error is reported.
func TestForEachFirstErrorWins(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("boom at %d", i) }
	var calls atomic.Int32
	err := ForEach(context.Background(), 100_000, 4, 1, func(_, i int) error {
		calls.Add(1)
		if i == 3 || i == 77 {
			return boom(i)
		}
		time.Sleep(time.Microsecond)
		return nil
	})
	if err == nil {
		t.Fatal("want an error")
	}
	if got := err.Error(); got != "boom at 3" && got != "boom at 77" {
		t.Fatalf("err = %q, want one of the injected errors", got)
	}
	if c := calls.Load(); c > 50_000 {
		t.Errorf("fn ran %d times after the error, want early stop", c)
	}

	// Single-worker inline path: deterministic first error.
	err = ForEach(context.Background(), 100, 1, 1, func(_, i int) error {
		if i >= 3 {
			return boom(i)
		}
		return nil
	})
	if err == nil || err.Error() != "boom at 3" {
		t.Errorf("inline err = %v, want boom at 3", err)
	}
}

// TestForEachPanicPropagates checks a worker panic is re-raised on the
// caller as a *Panic carrying the original value, and that no worker
// goroutine leaks past the re-raise.
func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: no panic propagated", workers)
				}
				p, ok := v.(*Panic)
				if !ok {
					// Both paths wrap: the doc promises *Panic whatever
					// the worker count.
					t.Fatalf("workers=%d: panic value is %T, want *Panic", workers, v)
				}
				if p.Value != "kaboom" {
					t.Errorf("panic value = %v, want kaboom", p.Value)
				}
				if len(p.Stack) == 0 {
					t.Error("panic carries no stack")
				}
				if p.Error() == "" {
					t.Error("Panic.Error is empty")
				}
			}()
			_ = ForEach(context.Background(), 100, workers, 1, func(_, i int) error {
				if i == 13 {
					panic("kaboom")
				}
				return nil
			})
		}()
	}
}

// TestForEachDeterministicResults checks the fan-out writes the same
// results whatever the worker/chunk configuration — the determinism
// contract the Monte Carlo search relies on.
func TestForEachDeterministicResults(t *testing.T) {
	const n = 513
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = float64(i) * 1.25
	}
	for _, workers := range []int{1, 2, 7} {
		for _, chunk := range []int{1, 5, 64} {
			got := make([]float64, n)
			err := ForEach(context.Background(), n, workers, chunk, func(_, i int) error {
				got[i] = float64(i) * 1.25
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d chunk=%d: index %d = %g, want %g", workers, chunk, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestForEachNoGoroutineLeak checks every worker has exited by the time
// ForEach returns, in success, error and cancellation cases.
func TestForEachNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	_ = ForEach(context.Background(), 10_000, 8, 1, func(_, _ int) error { return nil })
	_ = ForEach(context.Background(), 10_000, 8, 1, func(_, i int) error {
		if i > 100 {
			return errors.New("stop")
		}
		return nil
	})
	cancel()
	_ = ForEach(ctx, 10_000, 8, 1, func(_, _ int) error { return nil })

	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after", base, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerCount pins the resolution rules.
func TestWorkerCount(t *testing.T) {
	if got := WorkerCount(3, 100); got != 3 {
		t.Errorf("WorkerCount(3,100) = %d", got)
	}
	if got := WorkerCount(8, 2); got != 2 {
		t.Errorf("WorkerCount(8,2) = %d", got)
	}
	if got := WorkerCount(0, 100); got != runtime.GOMAXPROCS(0) && got != 100 {
		t.Errorf("WorkerCount(0,100) = %d", got)
	}
	if got := WorkerCount(5, 0); got != 1 {
		t.Errorf("WorkerCount(5,0) = %d, want 1", got)
	}
}
