// Package parallel provides the one goroutine fan-out primitive every
// compute layer of this repository shares: a deterministic, chunked,
// context-aware parallel for-loop with panic propagation. The subspace
// search (internal/core), the batch KNN passes (internal/neighbors) and
// model batch scoring (hics.Model.ScoreBatch) all run on ForEach — no
// other package spawns worker goroutines.
//
// # Determinism contract
//
// fn's effect for index i must not depend on which worker runs it — the
// worker id exists only so callers can reuse per-worker scratch state.
// Under that contract the outcome of a ForEach is bit-for-bit
// independent of scheduling, worker count and chunk size.
//
// # Cancellation contract
//
// Workers observe ctx between chunks (and callers typically re-check ctx
// inside fn's own inner loops), so a cancelled context stops the fan-out
// within one chunk of work per worker, and ForEach does not return until
// every worker goroutine has exited — no goroutine outlives the call.
//
// # Observability
//
// Because every fan-out in the process goes through ForEach, the
// package's two metrics series (fan-out invocations, busy workers) are
// the complete picture of worker-pool saturation; scrape
// hics_parallel_workers_busy against GOMAXPROCS to see how loaded the
// pool is. See docs/metrics.md.
package parallel
