package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"hics/internal/metrics"
)

// Worker-pool saturation instrumentation: every fan-out in the process
// goes through ForEach, so these two series are the complete picture of
// compute-pool pressure — scrape workers_busy against GOMAXPROCS to see
// how saturated the pool is.
var (
	mForEach = metrics.Default.NewCounter("hics_parallel_foreach_total",
		"Parallel fan-out invocations (every worker-pool use in the process).")
	mWorkersBusy = metrics.Default.NewGauge("hics_parallel_workers_busy",
		"Worker goroutines currently executing fan-out work.")
)

// Panic wraps a panic value recovered on a worker goroutine. ForEach
// re-raises it on the calling goroutine with the worker's stack attached,
// so a crash inside fn fails the caller instead of the whole process
// dying on an unrecovered goroutine.
type Panic struct {
	// Value is the worker's original panic value.
	Value any
	// Stack is the worker goroutine's stack at the time of the panic.
	Stack []byte
}

// Error makes a recovered Panic inspectable as an error.
func (p *Panic) Error() string {
	return fmt.Sprintf("parallel: worker panicked: %v\n%s", p.Value, p.Stack)
}

// WorkerCount resolves a requested worker count against a job of n items:
// requested <= 0 means one worker per CPU, and a job never gets more
// workers than items. The result is at least 1 for n > 0.
func WorkerCount(requested, n int) int {
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > n {
		requested = n
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// ForEach invokes fn(worker, i) for every index i in [0, n), fanned out
// over WorkerCount(workers, n) goroutines. Indices are handed out in
// contiguous chunks of the given size (chunk <= 0 selects a size aiming
// for several chunks per worker); workers check ctx between chunks, so a
// cancelled context is observed within one chunk of work.
//
// The first fn error cancels the remaining work and is returned; among
// errors observed concurrently the one with the lowest index wins, so
// the reported error is (close to) deterministic. An already-cancelled
// context returns ctx.Err() before fn runs at all; a cancellation during
// the run returns ctx.Err() unless an fn error arrived first. A panic in
// fn is re-raised on the calling goroutine as a *Panic.
func ForEach(ctx context.Context, n, workers, chunk int, fn func(worker, i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	workers = WorkerCount(workers, n)
	mForEach.Inc()
	mWorkersBusy.Add(float64(workers))
	defer mWorkersBusy.Add(-float64(workers))
	if chunk <= 0 {
		// Several chunks per worker: balanced tails without giving up the
		// between-chunk cancellation checks.
		chunk = n / (4 * workers)
		if chunk < 1 {
			chunk = 1
		}
	}
	if workers == 1 {
		// Run inline — same chunked cancellation checks and the same
		// panic contract as the fanned-out path, no goroutine.
		defer func() {
			if v := recover(); v != nil {
				if _, ok := v.(*Panic); !ok {
					v = &Panic{Value: v, Stack: debug.Stack()}
				}
				panic(v)
			}
		}()
		for lo := 0; lo < n; lo += chunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				if err := fn(0, i); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// The derived context stops the other workers on the first error or
	// panic without affecting the caller's ctx.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next unclaimed index
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errIdx   int
		pan      *Panic
	)
	report := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < errIdx {
			firstErr, errIdx = err, i
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					mu.Lock()
					if pan == nil {
						pan = &Panic{Value: v, Stack: debug.Stack()}
					}
					mu.Unlock()
					cancel()
				}
			}()
			for {
				if cctx.Err() != nil {
					return
				}
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if err := fn(w, i); err != nil {
						report(i, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if pan != nil {
		panic(pan)
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
